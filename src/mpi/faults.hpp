// Deterministic fault injection for the sgmpi runtime.
//
// A FaultPlan schedules per-rank events at *virtual-clock* times: transient
// message drops, link slowdowns, rank slowdowns, and rank crashes. Events
// trigger when the victim rank's own virtual clock reaches `at_vtime`, which
// keeps injection independent of real-thread interleaving: the same plan on
// the same workload always fails at the same point of the virtual execution.
//
// Interrupting events (crash, rank slowdown) unwind every live rank with a
// typed error so the caller can run ULFM-style recovery: the victim of a
// crash throws RankCrashedError, every other live rank observes the failure
// at its next runtime operation (or inside a blocked wait, which polls the
// fault epoch) and throws PeerFailedError. Survivors then agree on the
// failure epoch via Comm::shrink(). Non-interrupting events (link slowdown,
// message drop) only perturb the victim's modeled costs.
//
// When the plan is empty the runtime takes none of these paths — the
// fault-free execution is bit-identical, in results and virtual timing, to a
// build without fault hooks.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/trace/vclock.hpp"

namespace summagen::sgmpi {

enum class FaultKind {
  kCrash,         ///< rank dies; survivors shrink and re-partition
  kSlowdown,      ///< rank's compute slows by `factor`; re-partition, no shrink
  kLinkSlowdown,  ///< rank's link costs scale by `factor`; no unwind
  kMessageDrop,   ///< rank's next `drop_count` sends are dropped and retried
  /// Dynamic event raised at runtime by `Comm::raise_drift()` when a rank's
  /// drift detector confirms sustained load drift (never scheduled by a
  /// plan). Unlike crash/slowdown it does NOT interrupt peers mid-graph:
  /// `poll` ignores it, so peers run their full schedule and only observe
  /// the drift at the all-live `ft_commit` gate — the raiser finishes its
  /// communication schedule before raising, so no collective ever stalls on
  /// an unwound rank and every transition lands at a deterministic virtual
  /// time.
  kDrift,
};

const char* fault_kind_name(FaultKind kind);

/// One scheduled fault. `rank` is a world rank; the event triggers when that
/// rank's own virtual clock first reaches `at_vtime` at a runtime operation.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  int rank = 0;
  double at_vtime = 0.0;
  double factor = 1.0;  ///< slowdown multiplier (kSlowdown / kLinkSlowdown)
  int drop_count = 1;   ///< consecutive dropped send attempts (kMessageDrop)
};

struct FaultPlan {
  std::vector<FaultEvent> events;
  bool empty() const noexcept { return events.empty(); }
};

/// Parses the CLI fault syntax into a plan. The grammar is a comma-separated
/// list of events, each `<kind>@<t>:<rank>[x<arg>]`:
///
///   crash@0.5:1      rank 1 crashes at virtual time 0.5 s
///   slow@0.5:1x4     rank 1 computes 4x slower from t = 0.5 s
///   link@0.2:0x8     rank 0's link costs scale by 8x from t = 0.2 s
///   drop@0.1:2x3     rank 2's next 3 sends after t = 0.1 s are dropped
///
/// `x<arg>` defaults to factor 2.0 (slow/link) or one drop (drop) and is
/// rejected for crash. Throws std::invalid_argument on malformed input;
/// rank-range validation happens later, in the Runtime constructor.
FaultPlan parse_fault_plan(const std::string& text);

/// Thrown on every live rank when a peer crashes or degrades past tolerance.
/// Carries enough context for the caller to drive recovery.
class PeerFailedError : public std::runtime_error {
 public:
  PeerFailedError(int rank_in, FaultKind kind_in, double detected_vtime_in)
      : std::runtime_error("sgmpi: peer rank " + std::to_string(rank_in) +
                           " failed (" + fault_kind_name(kind_in) + ")"),
        rank(rank_in),
        kind(kind_in),
        detected_vtime(detected_vtime_in) {}

  int rank;
  FaultKind kind;
  double detected_vtime;  ///< observer's virtual time at detection
};

/// Thrown on the victim rank itself when its scheduled crash triggers. A
/// fault-tolerant caller catches it and lets the thread exit quietly (the
/// Runtime does not treat it as an abort); the peers see PeerFailedError.
class RankCrashedError : public std::runtime_error {
 public:
  explicit RankCrashedError(int rank_in)
      : std::runtime_error("sgmpi: rank " + std::to_string(rank_in) +
                           " crashed by fault plan"),
        rank(rank_in) {}
  int rank;
};

/// Lifecycle snapshot of one planned event, for recovery metrics.
struct FaultRecord {
  FaultEvent event;
  bool triggered = false;
  bool handled = false;           ///< agreed on by survivors (shrink)
  double trigger_vtime = -1.0;    ///< victim's virtual time at trigger
  double first_detect_vtime = -1.0;  ///< earliest detection over all ranks
  double handled_vtime = -1.0;    ///< agreement entry-max at shrink
};

/// Outcome of a shrink agreement (Comm::shrink).
struct ShrinkResult {
  std::vector<int> survivors;       ///< live world ranks, ascending
  std::vector<FaultEvent> handled;  ///< events settled by this agreement
  double agree_vtime = 0.0;         ///< virtual time the survivors agreed at
};

namespace detail {

/// Runtime-wide fault state: one per Context, present only when the plan is
/// non-empty. All methods are thread-safe; `poll` is cheap enough to call
/// from wait loops.
class FaultRuntime {
 public:
  FaultRuntime(FaultPlan plan, int nranks, double detect_s,
               int max_send_attempts, double retry_backoff_s);

  /// Called once by the Runtime: wakes every blocked wait in the context so
  /// a freshly-triggered failure is observed promptly.
  std::function<void()> on_trigger;
  /// Called by the shrink finaliser (no FaultRuntime lock held) to reset
  /// communicator fabric — async slots, sequence counters, meetings,
  /// mailboxes — before survivors resume.
  std::function<void()> fabric_reset;

  /// Fault check for `rank` at its current virtual time: triggers this
  /// rank's due events (a due crash marks the rank dead and throws
  /// RankCrashedError), then throws PeerFailedError if any interrupting
  /// event is triggered but not yet handled. No-op otherwise.
  void poll(int rank, trace::VirtualClock& clk);

  /// Bumped whenever an interrupting event triggers; blocked waits compare
  /// against it to wake up and re-poll.
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  bool rank_dead(int rank) const;

  /// Product of this rank's triggered compute-slowdown factors.
  double compute_factor(int rank) const;

  /// Arms due link-slowdown events for `rank` and returns the product of
  /// the active factors (1.0 when none).
  double link_factor(int rank, double vtime);

  /// Message-drop handling for one send posted by `rank` at cost
  /// `base_cost`: arms due drop events, consumes armed drops as failed
  /// attempts (each charging the wasted attempt plus exponential backoff),
  /// and returns the total retry penalty. Throws PeerFailedError if the
  /// attempt cap is exceeded.
  double send_attempt_penalty(int rank, double vtime, double base_cost);

  /// Registers a confirmed-drift event for `rank` at virtual time `vtime`
  /// (already triggered — there is no pending phase) and wakes blocked
  /// waits. The caller then throws PeerFailedError(kDrift) on the raising
  /// rank; peers observe the event at the next commit gate, never from
  /// `poll`.
  void raise_drift(int rank, double vtime);

  /// Blocks until every live rank has arrived, then settles all triggered
  /// events as handled and resets the communication fabric (first observer
  /// of completion finalises). Ranks that die while others wait shrink the
  /// completion condition instead of deadlocking.
  ShrinkResult shrink_arrive(int rank, double entry_vtime,
                             double poll_interval_s);

  /// End-of-phase agreement: blocks until every live rank arrives, then
  /// returns {entry-max, live count} if no unhandled interrupting failure
  /// exists, and throws PeerFailedError on every arriver otherwise. A
  /// failure that triggers while waiting aborts the wait with
  /// PeerFailedError. The caller's clock is settled to the entry-max.
  std::pair<double, int> commit_arrive(int rank, trace::VirtualClock& clk,
                                       double poll_interval_s);

  std::vector<FaultRecord> records() const;

 private:
  struct EventState {
    FaultEvent event;
    enum class Phase { kPending, kTriggered, kHandled } phase = Phase::kPending;
    double trigger_vtime = -1.0;
    double first_detect_vtime = -1.0;
    double handled_vtime = -1.0;
    int drops_left = 0;  ///< armed, not-yet-consumed drops (kMessageDrop)
  };

  bool interrupting(const EventState& s) const {
    return s.event.kind == FaultKind::kCrash ||
           s.event.kind == FaultKind::kSlowdown ||
           s.event.kind == FaultKind::kDrift;
  }
  /// Triggers `rank`'s due events under the lock; returns true if an
  /// interrupting event newly triggered (caller must notify after unlock).
  bool trigger_due_locked(int rank, double vtime);
  /// First triggered-but-unhandled interrupting event, or nullptr. kDrift
  /// events only count when `include_drift`: drift never unwinds peers from
  /// poll/waits (the raiser completes its communication schedule first), it
  /// surfaces at the commit gate.
  EventState* live_failure_locked(bool include_drift);
  bool all_live_arrived_locked(const std::vector<bool>& arrived) const;
  /// Settles detection on `clk` and throws PeerFailedError for `failure`.
  [[noreturn]] void throw_detected_locked(EventState& failure,
                                          trace::VirtualClock& clk);

  const int nranks_;
  const double detect_s_;
  const int max_send_attempts_;
  const double retry_backoff_s_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<std::uint64_t> epoch_{0};
  std::vector<EventState> events_;
  std::vector<bool> dead_;

  // Shrink gate.
  std::vector<bool> shrink_arrived_;
  int shrink_arrived_count_ = 0;
  double shrink_entry_max_ = 0.0;
  bool shrink_finalizing_ = false;
  std::uint64_t shrink_gen_ = 0;
  ShrinkResult shrink_snapshot_;

  // Commit gate.
  std::vector<bool> commit_arrived_;
  int commit_arrived_count_ = 0;
  double commit_entry_max_ = 0.0;
  std::uint64_t commit_gen_ = 0;
  double commit_result_ = 0.0;
  int commit_live_ = 0;
};

}  // namespace detail
}  // namespace summagen::sgmpi

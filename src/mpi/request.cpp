// Non-blocking sgmpi operations: post/complete split of broadcast and
// point-to-point, plus the blocking wrappers built on top of them.
//
// Posting never blocks on peers. A collective post registers this rank in a
// per-communicator AsyncSlot matched by posting order (the MPI rule that all
// members issue collectives on a communicator in the same sequence) and
// reserves the rank's virtual communication lane. Payload movement and
// virtual-time settlement happen at completion (`wait`/`waitall`/`test`):
// receivers copy straight out of the root's buffer, and the root's own
// completion blocks until every receiver has copied, which is what makes the
// root's buffer lifetime end at its wait — the guarantee the const-correct
// `ibcast_send_bytes` path relies on.
//
// Virtual time: an operation's effective interval is
// [entry_max, entry_max + cost], where entry_max is the latest comm-lane
// start over all posters. Completion settles the caller's clock via
// VirtualClock::complete_async_comm, so cost overlapping local compute is
// hidden (the overlap win) and only the remainder stalls the main line.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <utility>

#include "src/mpi/context.hpp"
#include "src/mpi/mpi.hpp"

namespace summagen::sgmpi {

namespace {

void validate_root(int root, int size) {
  if (root < 0 || root >= size) {
    throw std::invalid_argument("sgmpi: root " + std::to_string(root) +
                                " outside communicator of size " +
                                std::to_string(size));
  }
}

std::string comm_label(std::size_t state_index) {
  return state_index == 0 ? "world"
                          : "subgroup#" + std::to_string(state_index);
}

/// Retires this rank's participation in a slot; the last member out erases
/// the slot (sequence numbers never repeat, so erasure is final).
void finish_slot(detail::CommState& st,
                 std::map<std::uint64_t, detail::AsyncSlot>::iterator it,
                 int q) {
  if (++it->second.finished == q) st.async_slots.erase(it);
}

}  // namespace

// Destroying a pending request is a programming error (the peers of a
// collective would wait forever for this rank's completion) and fails
// loudly. During exception unwind the runtime is already tearing the run
// down via the abort/fault path, so dropping a pending request there is
// tolerated.
Request::~Request() {
  if (op_ == nullptr) return;
  if (std::uncaught_exceptions() > 0) return;
  const char* kind = "unknown";
  switch (op_->kind) {
    case Kind::kBcastRecv:
      kind = "ibcast(recv)";
      break;
    case Kind::kBcastSendRoot:
      kind = "ibcast(root)";
      break;
    case Kind::kSend:
      kind = "isend";
      break;
    case Kind::kRecv:
      kind = "irecv";
      break;
  }
  std::fprintf(stderr,
               "sgmpi: fatal: pending %s request destroyed without "
               "wait/test on comm '%s'\n",
               kind, op_->comm_desc.c_str());
  std::fflush(stderr);
  std::abort();
}

Request Comm::ibcast_bytes(void* data, std::int64_t bytes, int root) {
  const int q = size();
  validate_root(root, q);
  if (bytes < 0) throw std::invalid_argument("sgmpi: negative bcast size");
  if (q == 1) return Request{};
  ctx_->unwind_check(world_rank());

  auto op = std::make_unique<Request::Op>();
  op->kind = rank_ == root ? Request::Kind::kBcastSendRoot
                           : Request::Kind::kBcastRecv;
  op->state_index = state_index_;
  op->recv_buf = rank_ == root ? nullptr : data;
  op->bytes = bytes;
  op->root = root;
  op->cost = modeled_bcast_cost(bytes, q);
  if (ctx_->faults) {
    op->cost *= ctx_->faults->link_factor(world_rank(), clock().now());
  }
  op->lane_start = clock().post_async_comm(op->cost);
  op->comm_desc = comm_label(state_index_);

  auto& st = ctx_->state(state_index_);
  {
    std::lock_guard<std::mutex> lock(st.async_mutex);
    op->seq = st.next_post_seq[static_cast<std::size_t>(rank_)]++;
    auto& slot = st.async_slots[op->seq];
    ++slot.posted;
    slot.entry_max = std::max(slot.entry_max, op->lane_start);
    if (slot.bytes < 0) {
      slot.bytes = bytes;
    } else if (slot.bytes != bytes) {
      throw std::invalid_argument(
          "sgmpi: bcast size mismatch across members (got " +
          std::to_string(bytes) + " vs " + std::to_string(slot.bytes) + ")");
    }
    if (slot.root < 0) {
      slot.root = root;
    } else if (slot.root != root) {
      throw std::invalid_argument("sgmpi: bcast root mismatch across members");
    }
    if (rank_ == root) {
      slot.src = data;
      slot.root_posted = true;
    }
  }
  st.async_cv.notify_all();
  return Request{std::move(op)};
}

Request Comm::ibcast_panel(util::ConstMatrixView src, util::MatrixView dst,
                           int root) {
  const int q = size();
  validate_root(root, q);
  const bool is_root = rank_ == root;
  if (!is_root && src.data() != nullptr) {
    throw std::invalid_argument(
        "sgmpi: ibcast_panel src is root-only (non-root members pass {})");
  }
  const std::int64_t rows = is_root ? src.rows() : dst.rows();
  const std::int64_t cols = is_root ? src.cols() : dst.cols();
  if (is_root && dst.data() != nullptr &&
      (dst.rows() != rows || dst.cols() != cols)) {
    throw std::invalid_argument(
        "sgmpi: ibcast_panel root dst shape differs from src");
  }
  const std::int64_t bytes =
      rows * cols * static_cast<std::int64_t>(sizeof(double));
  if (q == 1) {
    // Single-member communicator: no traffic, but the root's local store
    // still happens (callers rely on the panel landing in dst).
    if (is_root && dst.data() != nullptr && rows > 0 && cols > 0) {
      util::copy_view(src, dst);
    }
    return Request{};
  }
  ctx_->unwind_check(world_rank());

  auto op = std::make_unique<Request::Op>();
  op->kind = is_root ? Request::Kind::kBcastSendRoot
                     : Request::Kind::kBcastRecv;
  op->state_index = state_index_;
  op->recv_buf = dst.data();
  op->bytes = bytes;
  op->root = root;
  op->panel = true;
  op->panel_rows = rows;
  op->panel_cols = cols;
  op->src_ld = src.ld();
  op->dst_ld = dst.ld();
  op->panel_src = src.data();
  op->cost = modeled_bcast_cost(bytes, q);
  if (ctx_->faults) {
    op->cost *= ctx_->faults->link_factor(world_rank(), clock().now());
  }
  op->lane_start = clock().post_async_comm(op->cost);
  op->comm_desc = comm_label(state_index_);

  auto& st = ctx_->state(state_index_);
  {
    std::lock_guard<std::mutex> lock(st.async_mutex);
    op->seq = st.next_post_seq[static_cast<std::size_t>(rank_)]++;
    auto& slot = st.async_slots[op->seq];
    ++slot.posted;
    slot.entry_max = std::max(slot.entry_max, op->lane_start);
    if (slot.bytes < 0) {
      slot.bytes = bytes;
    } else if (slot.bytes != bytes) {
      throw std::invalid_argument(
          "sgmpi: bcast size mismatch across members (got " +
          std::to_string(bytes) + " vs " + std::to_string(slot.bytes) + ")");
    }
    if (slot.root < 0) {
      slot.root = root;
    } else if (slot.root != root) {
      throw std::invalid_argument("sgmpi: bcast root mismatch across members");
    }
    if (slot.rows < 0) {
      slot.rows = rows;
      slot.cols = cols;
    } else if (slot.rows != rows || slot.cols != cols) {
      throw std::invalid_argument(
          "sgmpi: panel bcast shape mismatch across members");
    }
    if (is_root) {
      slot.src = src.data();
      slot.src_ld = src.ld();
      slot.root_posted = true;
    }
  }
  st.async_cv.notify_all();
  return Request{std::move(op)};
}

Request Comm::ibcast_send_bytes(const void* data, std::int64_t bytes,
                                int root) {
  if (rank_ != root) {
    throw std::invalid_argument(
        "sgmpi: ibcast_send_bytes must be called by the root (receivers "
        "need a writable buffer)");
  }
  // The runtime never writes through the root's pointer; the const_cast is
  // confined here and covered by that invariant.
  return ibcast_bytes(const_cast<void*>(data), bytes, root);
}

Request Comm::isend_bytes(const void* data, std::int64_t bytes, int dest,
                          int tag) {
  const int q = size();
  if (dest < 0 || dest >= q) {
    throw std::invalid_argument("sgmpi: send to invalid rank");
  }
  if (dest == rank_) {
    throw std::invalid_argument("sgmpi: send to self is not supported");
  }
  if (bytes < 0) throw std::invalid_argument("sgmpi: negative send size");
  ctx_->unwind_check(world_rank());

  auto op = std::make_unique<Request::Op>();
  op->kind = Request::Kind::kSend;
  op->state_index = state_index_;
  op->bytes = bytes;
  op->peer = dest;
  op->tag = tag;
  op->cost = link_to(dest).p2p(bytes);
  if (ctx_->faults) {
    const double base =
        op->cost * ctx_->faults->link_factor(world_rank(), clock().now());
    // Injected drops: each wasted attempt costs the transfer plus an
    // exponential backoff; the message itself lands exactly once.
    op->cost = base + ctx_->faults->send_attempt_penalty(world_rank(),
                                                         clock().now(), base);
  }
  op->lane_start = clock().post_async_comm(op->cost);
  op->comm_desc = comm_label(state_index_);

  // Buffered-eager: the payload is snapshotted at post time, so the
  // sender's buffer is reusable immediately and completion is local.
  detail::Message msg;
  msg.comm_state = state_index_;
  msg.src_comm_rank = rank_;
  msg.tag = tag;
  msg.bytes = bytes;
  msg.sender_entry_vtime = op->lane_start;
  if (data != nullptr && bytes > 0) {
    const auto* p = static_cast<const std::byte*>(data);
    msg.payload.assign(p, p + bytes);
  }

  const int dest_world = world_ranks()[static_cast<std::size_t>(dest)];
  auto& box = ctx_->mailboxes[static_cast<std::size_t>(dest_world)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_all();
  return Request{std::move(op)};
}

Request Comm::irecv_bytes(void* data, std::int64_t bytes, int source,
                          int tag) {
  const int q = size();
  if (source < 0 || source >= q) {
    throw std::invalid_argument("sgmpi: recv from invalid rank");
  }
  if (bytes < 0) throw std::invalid_argument("sgmpi: negative recv size");
  ctx_->unwind_check(world_rank());

  auto op = std::make_unique<Request::Op>();
  op->kind = Request::Kind::kRecv;
  op->state_index = state_index_;
  op->recv_buf = data;
  op->bytes = bytes;
  op->peer = source;
  op->tag = tag;
  op->cost = link_to(source).p2p(bytes);
  if (ctx_->faults) {
    op->cost *= ctx_->faults->link_factor(world_rank(), clock().now());
  }
  op->lane_start = clock().post_async_comm(op->cost);
  op->comm_desc = comm_label(state_index_);
  return Request{std::move(op)};
}

Request Comm::isend_panel(util::ConstMatrixView src, int dest, int tag) {
  const int q = size();
  if (dest < 0 || dest >= q) {
    throw std::invalid_argument("sgmpi: send to invalid rank");
  }
  if (dest == rank_) {
    throw std::invalid_argument("sgmpi: send to self is not supported");
  }
  ctx_->unwind_check(world_rank());

  const std::int64_t bytes =
      src.rows() * src.cols() * static_cast<std::int64_t>(sizeof(double));
  auto op = std::make_unique<Request::Op>();
  op->kind = Request::Kind::kSend;
  op->state_index = state_index_;
  op->bytes = bytes;
  op->peer = dest;
  op->tag = tag;
  op->panel = true;
  op->panel_rows = src.rows();
  op->panel_cols = src.cols();
  op->src_ld = src.ld();
  op->cost = link_to(dest).p2p(bytes);
  if (ctx_->faults) {
    const double base =
        op->cost * ctx_->faults->link_factor(world_rank(), clock().now());
    op->cost = base + ctx_->faults->send_attempt_penalty(world_rank(),
                                                         clock().now(), base);
  }
  op->lane_start = clock().post_async_comm(op->cost);
  op->comm_desc = comm_label(state_index_);

  // Buffered-eager like isend_bytes, but the snapshot gathers the strided
  // view row-wise — the one staging copy a contiguous send makes anyway.
  detail::Message msg;
  msg.comm_state = state_index_;
  msg.src_comm_rank = rank_;
  msg.tag = tag;
  msg.bytes = bytes;
  msg.sender_entry_vtime = op->lane_start;
  if (src.data() != nullptr && bytes > 0) {
    msg.payload.resize(static_cast<std::size_t>(bytes));
    util::copy_matrix(reinterpret_cast<double*>(msg.payload.data()),
                      src.cols(), src.data(), src.ld(), src.rows(),
                      src.cols());
  }

  const int dest_world = world_ranks()[static_cast<std::size_t>(dest)];
  auto& box = ctx_->mailboxes[static_cast<std::size_t>(dest_world)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_all();
  return Request{std::move(op)};
}

Request Comm::irecv_panel(util::MatrixView dst, int source, int tag) {
  const std::int64_t bytes =
      dst.rows() * dst.cols() * static_cast<std::int64_t>(sizeof(double));
  Request r = irecv_bytes(dst.data(), bytes, source, tag);
  r.op_->panel = true;
  r.op_->panel_rows = dst.rows();
  r.op_->panel_cols = dst.cols();
  r.op_->dst_ld = dst.ld();
  return r;
}

double Comm::wait(Request& request) {
  if (!request.pending()) return 0.0;
  const Request::Op& op = *request.op_;
  if (op.state_index != state_index_) {
    throw std::invalid_argument(
        "sgmpi: request waited on a different communicator than it was "
        "posted on");
  }
  const double entry = clock().now();
  double completion = 0.0;

  switch (op.kind) {
    case Request::Kind::kSend:
      completion = op.lane_start + op.cost;
      break;

    case Request::Kind::kRecv: {
      const int me = world_rank();
      auto& box = ctx_->mailboxes[static_cast<std::size_t>(me)];
      detail::Message msg;
      {
        std::unique_lock<std::mutex> lock(box.mutex);
        double backoff_s = std::min(ctx_->config.poll_interval_s, 0.001);
        for (;;) {
          const auto it = std::find_if(
              box.queue.begin(), box.queue.end(),
              [&](const detail::Message& m) {
                return m.comm_state == state_index_ &&
                       m.src_comm_rank == op.peer && m.tag == op.tag;
              });
          if (it != box.queue.end()) {
            msg = std::move(*it);
            box.queue.erase(it);
            break;
          }
          ctx_->unwind_check(me);
          detail::engine_wait_step(lock, box.cv, backoff_s,
                                   ctx_->config.poll_interval_s);
        }
      }
      if (msg.bytes != op.bytes) {
        throw std::invalid_argument(
            "sgmpi: recv size mismatch (got " + std::to_string(msg.bytes) +
            " bytes, expected " + std::to_string(op.bytes) + ")");
      }
      if (op.recv_buf != nullptr && !msg.payload.empty()) {
        if (op.panel) {
          // Scatter the contiguous wire payload into the strided dst.
          util::copy_matrix(static_cast<double*>(op.recv_buf), op.dst_ld,
                            reinterpret_cast<const double*>(
                                msg.payload.data()),
                            op.panel_cols, op.panel_rows, op.panel_cols);
        } else {
          std::memcpy(op.recv_buf, msg.payload.data(), msg.payload.size());
        }
      }
      completion = std::max(op.lane_start, msg.sender_entry_vtime) + op.cost;
      break;
    }

    case Request::Kind::kBcastRecv:
    case Request::Kind::kBcastSendRoot: {
      auto& st = ctx_->state(state_index_);
      const int q = size();
      const int me = world_rank();
      double entry_max = 0.0;
      {
        std::unique_lock<std::mutex> lock(st.async_mutex);
        const auto it = st.async_slots.find(op.seq);
        if (it == st.async_slots.end()) {
          throw std::logic_error("sgmpi: request completed twice");
        }
        detail::AsyncSlot& slot = it->second;
        double backoff_s = std::min(ctx_->config.poll_interval_s, 0.001);
        const bool is_root = op.kind == Request::Kind::kBcastSendRoot;
        while (slot.posted < q || (is_root && slot.copied < q - 1)) {
          ctx_->unwind_check(me);
          detail::engine_wait_step(lock, st.async_cv, backoff_s,
                                   ctx_->config.poll_interval_s);
        }
        if (!is_root) {
          if (op.recv_buf != nullptr && slot.src != nullptr) {
            if (op.panel) {
              // Strided gather straight out of the root's view — the
              // zero-staging path of ibcast_panel. A contiguous root
              // (src_ld unset) is read with ld == cols.
              const std::int64_t src_ld =
                  slot.src_ld >= 0 ? slot.src_ld : op.panel_cols;
              if (op.panel_rows > 0 && op.panel_cols > 0) {
                util::copy_matrix(static_cast<double*>(op.recv_buf),
                                  op.dst_ld,
                                  static_cast<const double*>(slot.src),
                                  src_ld, op.panel_rows, op.panel_cols);
              }
            } else {
              std::memcpy(op.recv_buf, slot.src,
                          static_cast<std::size_t>(op.bytes));
            }
          }
          ++slot.copied;
        }
        entry_max = slot.entry_max;
        finish_slot(st, it, q);
      }
      st.async_cv.notify_all();
      // Panel root with a local destination: store its own copy of the
      // panel now, outside the slot lock (src and dst are this rank's
      // buffers; values are identical whenever it happens before return).
      if (op.kind == Request::Kind::kBcastSendRoot && op.panel &&
          op.recv_buf != nullptr && op.panel_src != nullptr &&
          op.panel_rows > 0 && op.panel_cols > 0) {
        util::copy_matrix(static_cast<double*>(op.recv_buf), op.dst_ld,
                          op.panel_src, op.src_ld, op.panel_rows,
                          op.panel_cols);
      }
      completion = entry_max + op.cost;
      break;
    }
  }

  const double cost = op.cost;
  clock().complete_async_comm(completion, cost);
  record_completion(op, entry, completion);
  request.op_.reset();
  return cost;
}

double Comm::waitall(std::vector<Request>& requests) {
  double total = 0.0;
  for (Request& r : requests) total += wait(r);
  return total;
}

bool Comm::test(Request& request) {
  if (!request.pending()) return true;
  const Request::Op& op = *request.op_;

  switch (op.kind) {
    case Request::Kind::kSend:
      break;  // buffered send: completion is local, wait() never blocks

    case Request::Kind::kRecv: {
      auto& box = ctx_->mailboxes[static_cast<std::size_t>(world_rank())];
      std::lock_guard<std::mutex> lock(box.mutex);
      const auto it = std::find_if(
          box.queue.begin(), box.queue.end(), [&](const detail::Message& m) {
            return m.comm_state == state_index_ &&
                   m.src_comm_rank == op.peer && m.tag == op.tag;
          });
      if (it == box.queue.end()) return false;
      break;  // a matching message is queued: wait() below cannot block
    }

    case Request::Kind::kBcastRecv:
    case Request::Kind::kBcastSendRoot: {
      auto& st = ctx_->state(state_index_);
      const int q = size();
      {
        std::lock_guard<std::mutex> lock(st.async_mutex);
        const auto it = st.async_slots.find(op.seq);
        if (it == st.async_slots.end()) {
          throw std::logic_error("sgmpi: request completed twice");
        }
        const detail::AsyncSlot& slot = it->second;
        const bool is_root = op.kind == Request::Kind::kBcastSendRoot;
        if (slot.posted < q || (is_root && slot.copied < q - 1)) return false;
      }
      break;  // fully posted (and copied, for the root): wait() is instant
    }
  }
  wait(request);
  return true;
}

double Comm::bcast_panel(util::ConstMatrixView src, util::MatrixView dst,
                         int root) {
  Request r = ibcast_panel(src, dst, root);
  if (!r.pending()) return 0.0;  // single-member communicator
  r.op_->blocking = true;
  return wait(r);
}

double Comm::bcast_bytes(void* data, std::int64_t bytes, int root) {
  Request r = ibcast_bytes(data, bytes, root);
  if (!r.pending()) return 0.0;  // single-member communicator
  r.op_->blocking = true;
  return wait(r);
}

double Comm::bcast_send_bytes(const void* data, std::int64_t bytes,
                              int root) {
  Request r = ibcast_send_bytes(data, bytes, root);
  if (!r.pending()) return 0.0;
  r.op_->blocking = true;
  return wait(r);
}

void Comm::send_bytes(const void* data, std::int64_t bytes, int dest,
                      int tag) {
  Request r = isend_bytes(data, bytes, dest, tag);
  r.op_->blocking = true;
  wait(r);
}

void Comm::recv_bytes(void* data, std::int64_t bytes, int source, int tag) {
  Request r = irecv_bytes(data, bytes, source, tag);
  r.op_->blocking = true;
  wait(r);
}

void Comm::send_panel(util::ConstMatrixView src, int dest, int tag) {
  Request r = isend_panel(src, dest, tag);
  r.op_->blocking = true;
  wait(r);
}

void Comm::recv_panel(util::MatrixView dst, int source, int tag) {
  Request r = irecv_panel(dst, source, tag);
  r.op_->blocking = true;
  wait(r);
}

void Comm::record_completion(const Request::Op& op, double wait_entry,
                             double completion) {
  if (!events().enabled()) return;
  switch (op.kind) {
    case Request::Kind::kBcastRecv:
    case Request::Kind::kBcastSendRoot: {
      const std::string detail =
          "root=w" + std::to_string(world_ranks()[static_cast<std::size_t>(
                         op.root)]);
      if (op.blocking) {
        // Identical to the historical blocking event: spans the call.
        events().record({world_rank(), trace::EventKind::kBcast, wait_entry,
                         clock().now(), op.bytes, 0, detail});
      } else {
        // The operation's effective interval on the comm lane — it may lie
        // entirely under earlier compute in the Gantt (that is the point).
        events().record({world_rank(), trace::EventKind::kAsyncBcast,
                         completion - op.cost, completion, op.bytes, 0,
                         detail});
      }
      break;
    }
    case Request::Kind::kRecv: {
      const std::string detail = "recv from c" + std::to_string(op.peer);
      if (op.blocking) {
        events().record({world_rank(), trace::EventKind::kTransfer,
                         wait_entry, clock().now(), op.bytes, 0, detail});
      } else {
        events().record({world_rank(), trace::EventKind::kAsyncTransfer,
                         completion - op.cost, completion, op.bytes, 0,
                         detail});
      }
      break;
    }
    case Request::Kind::kSend:
      // Sends never recorded an event on the blocking path; keep parity.
      break;
  }
}

}  // namespace summagen::sgmpi

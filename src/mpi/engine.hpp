// Modeled execution engine: many ranks on one OS thread.
//
// The thread engine (the historical default) backs every sgmpi rank with a
// std::thread, which caps the simulated cluster at a few dozen ranks — a
// p=4096 run would need four thousand OS threads and their stacks. The
// modeled engine replaces them with cooperative fibers: each rank body runs
// unchanged on a stackful coroutine (ucontext), and one scheduler thread
// resumes the fibers round-robin in rank order. A rank that would block on a
// peer (rendezvous, async-slot wait, mailbox recv, shrink/commit gate)
// yields back to the scheduler instead of sleeping on a condition variable,
// so the whole parallel region is a deterministic single-threaded event loop
// over virtual time.
//
// Determinism: fibers are resumed in ascending rank order every sweep, and
// all cross-rank arithmetic in the runtime is arrival-order independent (max
// reductions; buffer sums in ascending communicator-rank order), so results
// AND virtual times are bit-identical to the thread engine.
//
// Stacks are mmap'd lazily-committed with a PROT_NONE guard page below, so
// p=4096 fibers reserve address space but only commit the pages each rank
// actually touches — the RSS that matters for the large-p smoke budget.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

namespace summagen::sgmpi::detail {

/// Cooperative scheduler hosting one fiber per rank on the calling thread.
class FiberHost {
 public:
  /// Stack reservation per fiber when Config::fiber_stack_bytes == 0.
  static constexpr std::size_t kDefaultStackBytes = 1u << 20;  // 1 MiB

  /// Prepares `nfibers` fibers with `stack_bytes` of stack each (rounded up
  /// to whole pages; a guard page is added on top of the reservation).
  FiberHost(int nfibers, std::size_t stack_bytes);
  ~FiberHost();
  FiberHost(const FiberHost&) = delete;
  FiberHost& operator=(const FiberHost&) = delete;

  /// Runs `body(i)` for every fiber i to completion on the calling thread.
  /// Fibers are started and resumed in ascending index order; an exception
  /// escaping a body terminates that fiber and is captured in errors()[i]
  /// (the others keep running — runtime-level unwind is the caller's job,
  /// exactly as with detached rank threads).
  void run(const std::function<void(int)>& body);

  /// Per-fiber captured exceptions after run() (null = clean exit).
  const std::vector<std::exception_ptr>& errors() const { return errors_; }

  /// The host driving the calling thread, or null when the caller is a
  /// plain thread (pool workers, the thread engine's ranks). Blocking wait
  /// sites branch on this: yield to the scheduler instead of sleeping.
  static FiberHost* current() noexcept;

  /// Index of the fiber currently running on this thread (-1 outside one).
  int current_fiber() const noexcept { return running_; }

  /// Returns control to the scheduler; the calling fiber is resumed on the
  /// next round-robin sweep. Must be called from inside a fiber with no
  /// locks held.
  void yield();

 private:
  struct Fiber;
  static void trampoline();
  void switch_to(int index);
  void switch_back(Fiber& fiber, bool dying);

  std::size_t stack_bytes_ = 0;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::vector<std::exception_ptr> errors_;
  const std::function<void(int)>* body_ = nullptr;
  int running_ = -1;   ///< fiber index executing now, -1 = scheduler
  int finished_ = 0;   ///< fibers that have returned/thrown

  // Sanitizer bookkeeping for the scheduler's own (thread) stack.
  void* host_fake_stack_ = nullptr;
  const void* host_stack_bottom_ = nullptr;
  std::size_t host_stack_size_ = 0;
  void* host_tsan_fiber_ = nullptr;
};

/// One step of a blocking wait loop, engine-aware: under a FiberHost the
/// calling fiber releases `lock`, yields one scheduler sweep, and re-locks;
/// on a plain thread it sleeps on `cv` with exponential backoff capped at
/// `poll_interval_s`. The caller's loop re-checks its predicate (and unwind
/// state) after every step, so both paths observe identical wake-up points.
template <typename Lock, typename Cv>
inline void engine_wait_step(Lock& lock, Cv& cv, double& backoff_s,
                             double poll_interval_s) {
  if (FiberHost* host = FiberHost::current()) {
    lock.unlock();
    host->yield();
    lock.lock();
    return;
  }
  cv.wait_for(lock, std::chrono::duration<double>(backoff_s));
  backoff_s = std::min(backoff_s * 2.0, poll_interval_s);
}

}  // namespace summagen::sgmpi::detail

// Umbrella header: the whole SummaGen library with one include.
//
//   #include "src/summagen.hpp"
//
// pulls in the public API of every module; link against the `summagen`
// CMake target. See README.md for a guided tour and DESIGN.md for the
// module inventory.
#pragma once

#include "src/blas/gemm.hpp"                  // DGEMM kernels
#include "src/core/dataplane.hpp"             // per-rank local matrices
#include "src/core/reference.hpp"             // serial oracle
#include "src/core/runner.hpp"                // one-call experiments
#include "src/core/summa.hpp"                 // classic SUMMA baseline
#include "src/core/summa25d.hpp"              // 2.5D replication algorithm
#include "src/core/summagen.hpp"              // the SummaGen algorithm
#include "src/device/device.hpp"              // abstract processors
#include "src/device/ooc.hpp"                 // out-of-core GEMM engine
#include "src/device/platform.hpp"            // HCLServer1 & friends
#include "src/device/speed_function.hpp"      // functional performance models
#include "src/energy/energy.hpp"              // power model + WattsUp meter
#include "src/mpi/mpi.hpp"                    // in-process MPI-like runtime
#include "src/partition/areas.hpp"            // workload partitioners
#include "src/partition/column_based.hpp"     // Beaumont baseline
#include "src/partition/nrrp.hpp"             // recursive non-rectangular
#include "src/partition/push.hpp"             // Push-Technique optimizer
#include "src/partition/shapes.hpp"           // the paper's shape builders
#include "src/partition/spec.hpp"             // {subp, subph, subpw}
#include "src/partition/spec_io.hpp"          // partition-file I/O
#include "src/trace/events.hpp"               // event log
#include "src/trace/gantt.hpp"                // Gantt / Chrome-trace output
#include "src/trace/hockney.hpp"              // communication model
#include "src/trace/stats.hpp"                // measurement statistics
#include "src/trace/vclock.hpp"               // virtual clocks
#include "src/util/cli.hpp"                   // flag parsing
#include "src/util/matrix.hpp"                // dense matrices
#include "src/util/rng.hpp"                   // deterministic randomness
#include "src/util/table.hpp"                 // table/CSV output

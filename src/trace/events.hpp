// Structured event log for post-mortem inspection of a PMM run.
//
// Each rank appends events (compute / broadcast / copy / wait) with virtual
// start/end times; examples render the result as a per-rank timeline and the
// experiment runner derives the paper's computation/communication splits.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace summagen::trace {

enum class EventKind {
  kCompute,
  kBcast,
  kBarrier,
  kCopy,
  kWait,
  kTransfer,
  /// Non-blocking broadcast: the interval is the operation's occupancy of
  /// the rank's communication lane, which may overlap kCompute events of
  /// the same rank — that overlap is the win a pipelined schedule shows.
  kAsyncBcast,
  /// Non-blocking point-to-point receive, same lane semantics.
  kAsyncTransfer,
};

const char* to_string(EventKind kind);

struct Event {
  int rank = 0;
  EventKind kind = EventKind::kCompute;
  double vstart = 0.0;  ///< virtual seconds
  double vend = 0.0;
  std::int64_t bytes = 0;   ///< payload for comm events
  std::int64_t flops = 0;   ///< work for compute events
  std::string detail;       ///< e.g. "subp(1,2) 1024x512"
};

/// Thread-safe append-only event collection shared by all ranks of a run.
class EventLog {
 public:
  /// When disabled, `record` is a cheap no-op (benches disable it).
  explicit EventLog(bool enabled = true) : enabled_(enabled) {}

  bool enabled() const noexcept { return enabled_; }

  void record(Event e);

  /// Snapshot of all events, ordered by (rank, vstart).
  std::vector<Event> sorted() const;

  std::size_t size() const;

  /// Sum of (vend - vstart) for one rank and kind.
  double total_seconds(int rank, EventKind kind) const;

  /// Human-readable per-rank timeline (one line per event).
  std::string render_timeline() const;

  void clear();

 private:
  bool enabled_;
  mutable std::mutex mutex_;
  std::vector<Event> events_;
};

}  // namespace summagen::trace

// Measurement statistics: Student-t confidence intervals, the paper's
// repeat-until-precise experiment driver, and a Pearson chi-squared
// normality check.
//
// Paper, Section VI: "To obtain an experimental data point, the application
// is executed repeatedly until the sample mean lies in the 95% confidence
// interval and a precision of 0.025 (2.5%) has been achieved. For this
// purpose, Student's t-test is used ... We verify the validity of these
// assumptions using Pearson's chi-squared test."
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace summagen::trace {

/// Sample mean.
double mean(const std::vector<double>& xs);

/// Unbiased sample standard deviation (n-1 denominator); 0 for n < 2.
double sample_stddev(const std::vector<double>& xs);

/// Two-sided Student-t critical value t_{1-alpha/2, df}.
///
/// Exact tabulated values for df in [1, 30] at 95% confidence; for larger df
/// or other confidence levels falls back to the Cornish-Fisher expansion of
/// the normal quantile, accurate to ~1e-3 for df >= 30.
double student_t_critical(int df, double confidence = 0.95);

/// Half-width of the confidence interval of the mean.
double confidence_halfwidth(const std::vector<double>& xs,
                            double confidence = 0.95);

/// Result of the repetition driver.
struct MeasuredPoint {
  double mean = 0.0;
  double ci_halfwidth = 0.0;  ///< at the requested confidence
  int repetitions = 0;
  bool converged = false;  ///< precision reached before max_reps
  std::vector<double> samples;
};

/// Options matching the paper's methodology.
struct MeasureOptions {
  double confidence = 0.95;
  double precision = 0.025;  ///< CI half-width <= precision * mean
  int min_reps = 3;
  int max_reps = 100;
};

/// Repeatedly invokes `experiment` (returning one observation, e.g. seconds)
/// until the CI half-width is within `precision * mean`, or max_reps.
MeasuredPoint measure_until_precise(const std::function<double()>& experiment,
                                    const MeasureOptions& opts = {});

/// Pearson chi-squared goodness-of-fit test against a normal distribution
/// with the sample's mean/stddev. Returns the test statistic; the caller
/// compares against `chi_squared_critical`. Bins chosen as equiprobable
/// cells (>= 5 expected per cell when possible).
struct ChiSquaredResult {
  double statistic = 0.0;
  int degrees_of_freedom = 0;
  double critical_value = 0.0;  ///< at 95%
  bool normality_plausible = false;
};
ChiSquaredResult chi_squared_normality(const std::vector<double>& xs);

/// Upper critical value of the chi-squared distribution at `confidence`
/// (Wilson-Hilferty approximation; ~1% accurate for df >= 2).
double chi_squared_critical(int df, double confidence = 0.95);

/// Percentage difference helpers used when reporting the paper's
/// "average percentage difference of 8%" style claims: for a set of
/// simultaneous observations, (max - min) / min * 100.
double percentage_spread(const std::vector<double>& xs);

}  // namespace summagen::trace

#include "src/trace/gantt.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>

namespace summagen::trace {
namespace {

char glyph(EventKind kind) {
  switch (kind) {
    case EventKind::kCompute:
      return 'C';
    case EventKind::kTransfer:
      return 'T';
    case EventKind::kBcast:
      return 'B';
    case EventKind::kBarrier:
      return 'R';
    case EventKind::kCopy:
      return 'c';
    case EventKind::kWait:
      return '.';
    case EventKind::kAsyncBcast:
      return 'b';
    case EventKind::kAsyncTransfer:
      return 't';
  }
  return '?';
}

}  // namespace

std::string render_gantt(const std::vector<Event>& events, double makespan,
                         const GanttOptions& opts) {
  if (events.empty() || opts.width < 4) return "";
  double end = makespan;
  std::map<int, std::vector<const Event*>> lanes;
  for (const Event& e : events) {
    lanes[e.rank].push_back(&e);
    end = std::max(end, e.vend);
  }
  if (end <= 0.0) return "";

  const double bucket = end / opts.width;
  std::ostringstream os;
  for (auto& [rank, lane_events] : lanes) {
    // Per bucket, the activity covering the most time wins.
    std::string lane(static_cast<std::size_t>(opts.width), '.');
    std::vector<std::map<EventKind, double>> coverage(
        static_cast<std::size_t>(opts.width));
    double busy = 0.0;
    for (const Event* e : lane_events) {
      busy += std::max(0.0, e->vend - e->vstart);
      const int b0 = std::clamp(
          static_cast<int>(e->vstart / bucket), 0, opts.width - 1);
      const int b1 = std::clamp(static_cast<int>(e->vend / bucket), 0,
                                opts.width - 1);
      for (int b = b0; b <= b1; ++b) {
        const double lo = std::max(e->vstart, b * bucket);
        const double hi = std::min(e->vend, (b + 1) * bucket);
        if (hi > lo) coverage[static_cast<std::size_t>(b)][e->kind] += hi - lo;
      }
    }
    for (int b = 0; b < opts.width; ++b) {
      const auto& cover = coverage[static_cast<std::size_t>(b)];
      EventKind best_kind = EventKind::kWait;
      double best_time = 0.0;
      for (const auto& [kind, t] : cover) {
        if (t > best_time) {
          best_time = t;
          best_kind = kind;
        }
      }
      if (best_time > 0.0) {
        lane[static_cast<std::size_t>(b)] = glyph(best_kind);
      }
    }
    os << "P" << rank << " |" << lane << "|";
    if (opts.show_utilisation) {
      os << " " << std::fixed << std::setprecision(0)
         << std::min(100.0, 100.0 * busy / end) << "%";
    }
    os << "\n";
  }
  if (opts.show_scale) {
    os << "    0" << std::string(static_cast<std::size_t>(opts.width) - 1,
                                 '-')
       << std::setprecision(3) << end << "s"
       << "  (C=compute T=transfer B=bcast b=ibcast t=irecv R=barrier "
          ".=idle)\n";
  }
  return os.str();
}

std::string export_chrome_trace(const std::vector<Event>& events) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  auto escape = [](const std::string& s) {
    std::string out;
    for (char ch : s) {
      if (ch == '"' || ch == '\\') out += '\\';
      out += ch;
    }
    return out;
  };
  for (const Event& e : events) {
    if (!first) os << ",";
    first = false;
    // Virtual seconds -> microseconds, the unit chrome://tracing expects.
    os << "\n{\"name\":\"" << to_string(e.kind) << "\",\"ph\":\"X\","
       << "\"pid\":0,\"tid\":" << e.rank << ",\"ts\":" << std::fixed
       << std::setprecision(3) << e.vstart * 1e6
       << ",\"dur\":" << std::max(0.0, e.vend - e.vstart) * 1e6
       << ",\"args\":{\"bytes\":" << e.bytes << ",\"flops\":" << e.flops
       << ",\"detail\":\"" << escape(e.detail) << "\"}}";
  }
  os << "\n]\n";
  return os.str();
}

}  // namespace summagen::trace

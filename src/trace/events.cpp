#include "src/trace/events.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace summagen::trace {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kCompute:
      return "compute";
    case EventKind::kBcast:
      return "bcast";
    case EventKind::kBarrier:
      return "barrier";
    case EventKind::kCopy:
      return "copy";
    case EventKind::kWait:
      return "wait";
    case EventKind::kTransfer:
      return "transfer";
    case EventKind::kAsyncBcast:
      return "ibcast";
    case EventKind::kAsyncTransfer:
      return "irecv";
  }
  return "?";
}

void EventLog::record(Event e) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(e));
}

std::vector<Event> EventLog::sorted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> out = events_;
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.vstart < b.vstart;
  });
  return out;
}

std::size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

double EventLog::total_seconds(int rank, EventKind kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const Event& e : events_) {
    if (e.rank == rank && e.kind == kind) total += e.vend - e.vstart;
  }
  return total;
}

std::string EventLog::render_timeline() const {
  std::ostringstream os;
  int last_rank = -1;
  for (const Event& e : sorted()) {
    if (e.rank != last_rank) {
      os << "rank " << e.rank << ":\n";
      last_rank = e.rank;
    }
    os << "  [" << std::fixed << std::setprecision(6) << e.vstart << ", "
       << e.vend << "] " << to_string(e.kind);
    if (e.bytes > 0) os << " " << e.bytes << "B";
    if (e.flops > 0) os << " " << e.flops << "flops";
    if (!e.detail.empty()) os << " " << e.detail;
    os << "\n";
  }
  return os.str();
}

void EventLog::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

}  // namespace summagen::trace

// Hockney point-to-point communication model and derived collective costs.
//
// The paper (Section III-A) uses the standard Hockney model: transferring m
// bytes between two processors costs alpha + beta*m, with alpha the latency
// and beta the reciprocal bandwidth. SummaGen's communication stages are
// built from broadcasts over row/column sub-communicators, so we also expose
// a binomial-tree broadcast cost.
#pragma once

#include <cstdint>

namespace summagen::trace {

/// Parameters of one communication link (or of the shared-memory MPI fabric
/// between abstract processors on the node).
struct HockneyParams {
  double alpha_s = 5.0e-6;       ///< latency per message, seconds
  double beta_s_per_byte = 1.0 / 6.0e9;  ///< reciprocal bandwidth, s/byte

  /// Cost of one point-to-point transfer of `bytes`.
  double p2p(std::int64_t bytes) const noexcept {
    return alpha_s + beta_s_per_byte * static_cast<double>(bytes);
  }
};

/// Number of communication rounds of a binomial-tree broadcast among
/// `nranks` participants: ceil(log2(nranks)); 0 when nranks <= 1.
int bcast_rounds(int nranks) noexcept;

/// Modeled completion time of a binomial-tree broadcast of `bytes` among
/// `nranks` participants (root included): rounds * (alpha + beta*m).
double bcast_cost(const HockneyParams& link, std::int64_t bytes,
                  int nranks) noexcept;

/// Modeled cost of a barrier among `nranks`: two tree traversals of empty
/// messages (gather + release).
double barrier_cost(const HockneyParams& link, int nranks) noexcept;

/// Modeled cost of an allreduce of `bytes`: reduce-tree + broadcast-tree.
double allreduce_cost(const HockneyParams& link, std::int64_t bytes,
                      int nranks) noexcept;

}  // namespace summagen::trace

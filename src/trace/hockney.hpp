// Hockney point-to-point communication model and derived collective costs.
//
// The paper (Section III-A) uses the standard Hockney model: transferring m
// bytes between two processors costs alpha + beta*m, with alpha the latency
// and beta the reciprocal bandwidth. SummaGen's communication stages are
// built from broadcasts over row/column sub-communicators, so we also expose
// a binomial-tree broadcast cost.
#pragma once

#include <cstdint>
#include <string>

namespace summagen::trace {

/// Parameters of one communication link (or of the shared-memory MPI fabric
/// between abstract processors on the node).
struct HockneyParams {
  double alpha_s = 5.0e-6;       ///< latency per message, seconds
  double beta_s_per_byte = 1.0 / 6.0e9;  ///< reciprocal bandwidth, s/byte

  /// Cost of one point-to-point transfer of `bytes`.
  double p2p(std::int64_t bytes) const noexcept {
    return alpha_s + beta_s_per_byte * static_cast<double>(bytes);
  }
};

/// Number of communication rounds of a binomial-tree broadcast among
/// `nranks` participants: ceil(log2(nranks)); 0 when nranks <= 1.
int bcast_rounds(int nranks) noexcept;

/// Modeled completion time of a binomial-tree broadcast of `bytes` among
/// `nranks` participants (root included): rounds * (alpha + beta*m).
double bcast_cost(const HockneyParams& link, std::int64_t bytes,
                  int nranks) noexcept;

/// Modeled cost of a barrier among `nranks`: two tree traversals of empty
/// messages (gather + release).
double barrier_cost(const HockneyParams& link, int nranks) noexcept;

/// Modeled cost of an allreduce of `bytes`: reduce-tree + broadcast-tree.
double allreduce_cost(const HockneyParams& link, std::int64_t bytes,
                      int nranks) noexcept;

/// Broadcast algorithm priced by `bcast_algo_cost`. kTree (binomial tree)
/// is the historical model and the default — committed virtual-time
/// baselines (BENCH_overlap.json, BENCH_drift.json) are tree-priced, so the
/// alternatives are strictly opt-in (`--bcast-algo`).
enum class BcastAlgo {
  kTree,       ///< binomial tree: ceil(log2 p) * (alpha + beta*m)
  kFlat,       ///< root sends to each member: (p-1) * (alpha + beta*m)
  kRing,       ///< scatter + ring allgather (van de Geijn): bandwidth-optimal
  kPipelined,  ///< segmented linear pipeline: (S+p-2) * (alpha + beta*m/S)
  kAuto,       ///< resolve_bcast_algo picks per (p, bytes)
};

const char* to_string(BcastAlgo algo) noexcept;

/// Parses "tree|flat|ring|pipelined|auto"; throws std::invalid_argument on
/// anything else.
BcastAlgo parse_bcast_algo(const std::string& name);

/// The concrete algorithm `algo` denotes for a broadcast of `bytes` among
/// `nranks`: identity for everything but kAuto, which picks tree in
/// latency-dominated regimes (small groups or small messages), ring for
/// large messages on large groups, pipelined in between. Deterministic in
/// its arguments.
BcastAlgo resolve_bcast_algo(BcastAlgo algo, int nranks,
                             std::int64_t bytes) noexcept;

/// Segment count of the pipelined broadcast: the analytic optimum
/// S* = sqrt(beta*m*(p-2)/alpha) of (S+p-2)(alpha + beta*m/S), clamped to
/// [1, 512].
int pipelined_bcast_segments(const HockneyParams& link, std::int64_t bytes,
                             int nranks) noexcept;

/// Modeled completion time of an `algo` broadcast of `bytes` among `nranks`
/// (root included). kTree reproduces `bcast_cost` exactly.
double bcast_algo_cost(const HockneyParams& link, std::int64_t bytes,
                       int nranks, BcastAlgo algo) noexcept;

}  // namespace summagen::trace

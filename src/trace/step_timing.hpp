// Per-step timing extraction and smoothing for online drift detection.
//
// The drift detector (src/core/drift.hpp) compares each compute step's
// *observed* modeled duration against the duration the partition's
// performance model *predicted* for it. This module holds the trace-layer
// pieces: the observation record, an exponentially-weighted moving average
// over the observed/predicted ratio (EWMA — robust to single-step noise),
// and the extraction of per-rank compute-step durations from an EventLog
// for post-mortem analysis.
#pragma once

#include <vector>

#include "src/trace/events.hpp"

namespace summagen::trace {

/// One compute step as the detector sees it: what the model predicted the
/// step would cost (static speeds, including any handled fault slowdown)
/// and what it actually cost under the live (possibly drifting) speed.
/// observed_s / predicted_s is exactly the live slowdown factor.
struct StepSample {
  double predicted_s = 0.0;
  double observed_s = 0.0;
  double vtime = 0.0;  ///< virtual time at the start of the step
};

/// Exponentially-weighted moving average of a ratio stream:
///   value = alpha * x + (1 - alpha) * value
/// seeded by the first sample. `alpha` in (0, 1]; larger = more reactive,
/// smaller = smoother. Deterministic, O(1) state.
class EwmaTracker {
 public:
  explicit EwmaTracker(double alpha) : alpha_(alpha) {}

  void update(double x) {
    value_ = count_ == 0 ? x : alpha_ * x + (1.0 - alpha_) * value_;
    ++count_;
  }

  double value() const noexcept { return value_; }
  int count() const noexcept { return count_; }

 private:
  double alpha_;
  double value_ = 1.0;
  int count_ = 0;
};

/// Ratio of a sample, guarded against degenerate predictions: returns 1.0
/// when predicted_s is not positive (a free step carries no drift signal).
double step_ratio(const StepSample& sample);

/// Extracts the durations (vend - vstart) of `rank`'s kCompute events from
/// a sorted event snapshot, in timeline order — the per-k-step timing a
/// post-mortem drift analysis chews on.
std::vector<double> compute_step_durations(const std::vector<Event>& events,
                                           int rank);

}  // namespace summagen::trace

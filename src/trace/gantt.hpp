// ASCII Gantt chart of a run's event timeline.
//
// One lane per rank, `width` character buckets spanning [0, makespan];
// each bucket shows the activity that dominates it:
//   C compute   T host<->device transfer   B broadcast   R barrier
//   c copy      . idle
//   b/t non-blocking broadcast / receive occupying the rank's async
//       communication lane — these may share buckets with compute, which
//       is how an overlapped (pipelined) schedule shows up
// A scale line and per-lane utilisation close the chart. Used by the
// examples to make the virtual-time schedules of SummaGen runs visible.
#pragma once

#include <string>
#include <vector>

#include "src/trace/events.hpp"

namespace summagen::trace {

struct GanttOptions {
  int width = 72;        ///< characters per lane
  bool show_scale = true;
  bool show_utilisation = true;
};

/// Renders the events (any order) as a Gantt chart. Ranks are the lanes,
/// ordered ascending; `makespan` of 0 autodetects from the events.
/// Returns "" for an empty event set.
std::string render_gantt(const std::vector<Event>& events,
                         double makespan = 0.0, const GanttOptions& opts = {});

/// Serialises the events in the Chrome trace-event JSON format: load the
/// output in chrome://tracing or https://ui.perfetto.dev to browse a run's
/// virtual-time schedule interactively. One track per rank; event names
/// are the activity kinds, with bytes/flops/detail attached as args.
std::string export_chrome_trace(const std::vector<Event>& events);

}  // namespace summagen::trace

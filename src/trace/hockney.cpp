#include "src/trace/hockney.hpp"

namespace summagen::trace {

int bcast_rounds(int nranks) noexcept {
  if (nranks <= 1) return 0;
  int rounds = 0;
  int reached = 1;
  while (reached < nranks) {
    reached *= 2;
    ++rounds;
  }
  return rounds;
}

double bcast_cost(const HockneyParams& link, std::int64_t bytes,
                  int nranks) noexcept {
  return static_cast<double>(bcast_rounds(nranks)) * link.p2p(bytes);
}

double barrier_cost(const HockneyParams& link, int nranks) noexcept {
  return 2.0 * static_cast<double>(bcast_rounds(nranks)) * link.p2p(0);
}

double allreduce_cost(const HockneyParams& link, std::int64_t bytes,
                      int nranks) noexcept {
  return 2.0 * static_cast<double>(bcast_rounds(nranks)) * link.p2p(bytes);
}

}  // namespace summagen::trace

#include "src/trace/hockney.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace summagen::trace {

int bcast_rounds(int nranks) noexcept {
  if (nranks <= 1) return 0;
  int rounds = 0;
  int reached = 1;
  while (reached < nranks) {
    reached *= 2;
    ++rounds;
  }
  return rounds;
}

double bcast_cost(const HockneyParams& link, std::int64_t bytes,
                  int nranks) noexcept {
  return static_cast<double>(bcast_rounds(nranks)) * link.p2p(bytes);
}

double barrier_cost(const HockneyParams& link, int nranks) noexcept {
  return 2.0 * static_cast<double>(bcast_rounds(nranks)) * link.p2p(0);
}

double allreduce_cost(const HockneyParams& link, std::int64_t bytes,
                      int nranks) noexcept {
  return 2.0 * static_cast<double>(bcast_rounds(nranks)) * link.p2p(bytes);
}

const char* to_string(BcastAlgo algo) noexcept {
  switch (algo) {
    case BcastAlgo::kTree:
      return "tree";
    case BcastAlgo::kFlat:
      return "flat";
    case BcastAlgo::kRing:
      return "ring";
    case BcastAlgo::kPipelined:
      return "pipelined";
    case BcastAlgo::kAuto:
      return "auto";
  }
  return "tree";
}

BcastAlgo parse_bcast_algo(const std::string& name) {
  if (name == "tree") return BcastAlgo::kTree;
  if (name == "flat") return BcastAlgo::kFlat;
  if (name == "ring") return BcastAlgo::kRing;
  if (name == "pipelined") return BcastAlgo::kPipelined;
  if (name == "auto") return BcastAlgo::kAuto;
  throw std::invalid_argument(
      "unknown broadcast algorithm '" + name +
      "' (expected tree|flat|ring|pipelined|auto)");
}

BcastAlgo resolve_bcast_algo(BcastAlgo algo, int nranks,
                             std::int64_t bytes) noexcept {
  if (algo != BcastAlgo::kAuto) return algo;
  // Small groups and small messages are latency-dominated: the binomial
  // tree's ceil(log2 p) rounds beat anything that adds per-member alphas.
  if (nranks <= 8 || bytes < (std::int64_t{8} << 10)) return BcastAlgo::kTree;
  // Large messages on large groups: ring's 2*beta*m*(p-1)/p bandwidth term
  // is asymptotically optimal and dwarfs its (p-1) alphas.
  if (bytes >= (std::int64_t{1} << 20)) return BcastAlgo::kRing;
  // In between, the segmented pipeline trades a few alphas for overlap.
  return BcastAlgo::kPipelined;
}

int pipelined_bcast_segments(const HockneyParams& link, std::int64_t bytes,
                             int nranks) noexcept {
  if (nranks <= 2 || bytes <= 1 || link.alpha_s <= 0.0) return 1;
  const double m = static_cast<double>(bytes);
  const double s_opt = std::sqrt(link.beta_s_per_byte * m *
                                 static_cast<double>(nranks - 2) /
                                 link.alpha_s);
  const double clamped = std::min(std::max(s_opt, 1.0), std::min(m, 512.0));
  return static_cast<int>(clamped);
}

double bcast_algo_cost(const HockneyParams& link, std::int64_t bytes,
                       int nranks, BcastAlgo algo) noexcept {
  if (nranks <= 1) return 0.0;
  const double p = static_cast<double>(nranks);
  const double m = static_cast<double>(bytes);
  switch (resolve_bcast_algo(algo, nranks, bytes)) {
    case BcastAlgo::kTree:
      return bcast_cost(link, bytes, nranks);
    case BcastAlgo::kFlat:
      return (p - 1.0) * link.p2p(bytes);
    case BcastAlgo::kRing:
      // Binomial scatter + ring allgather (van de Geijn / Chan et al.):
      // (p-1+ceil(log2 p)) latencies, 2*m*(p-1)/p bytes on the wire.
      return (p - 1.0 + static_cast<double>(bcast_rounds(nranks))) *
                 link.alpha_s +
             2.0 * link.beta_s_per_byte * m * (p - 1.0) / p;
    case BcastAlgo::kPipelined: {
      const int segments = pipelined_bcast_segments(link, bytes, nranks);
      const double seg_bytes = m / static_cast<double>(segments);
      return (static_cast<double>(segments) + p - 2.0) *
             (link.alpha_s + link.beta_s_per_byte * seg_bytes);
    }
    case BcastAlgo::kAuto:
      break;  // resolved above; unreachable
  }
  return bcast_cost(link, bytes, nranks);
}

}  // namespace summagen::trace

// Per-rank virtual clocks.
//
// The reproduction runs on a homogeneous multicore host, but the paper's
// platform is a 2.5 TFLOPs heterogeneous node. We therefore keep two timing
// domains (DESIGN.md §5.1): real wall time, and *virtual* time advanced by
// performance models (device speed functions for compute, Hockney for
// communication). Figure benches report virtual time; tests may check both.
#pragma once

#include <algorithm>
#include <cstdint>

namespace summagen::trace {

/// Virtual clock of one rank / abstract processor. Seconds, monotonic.
///
/// Accounting buckets let experiments split total elapsed time into
/// computation, communication, and idle (waiting at synchronisation), which
/// is exactly the decomposition of the paper's Figures 6b/6c and 7b/7c.
///
/// The clock models two lanes per rank: the *main line* (`now`), which the
/// program counter advances through compute and blocking communication, and
/// a *communication lane* that serialises asynchronous (posted) transfers.
/// An async operation occupies the comm lane from its post; if the main
/// line reaches the matching wait after the operation's completion time the
/// cost is fully hidden behind compute, otherwise the main line stalls for
/// the remainder. Completion time of the rank is `max(now, comm lane end)`.
class VirtualClock {
 public:
  double now() const noexcept { return now_; }

  /// Advances the clock by `seconds` of local computation.
  void advance_compute(double seconds) noexcept {
    now_ += seconds;
    compute_ += seconds;
  }

  /// Advances the clock by `seconds` of communication activity.
  void advance_comm(double seconds) noexcept {
    now_ += seconds;
    comm_ += seconds;
    comm_lane_end_ = std::max(comm_lane_end_, now_);
  }

  /// Jumps forward to `target` (synchronisation with a peer that finishes
  /// later); the gap is accounted as idle time. No-op if target <= now.
  void wait_until(double target) noexcept {
    if (target > now_) {
      idle_ += target - now_;
      now_ = target;
    }
  }

  /// Reserves the communication lane for an asynchronous operation of
  /// `seconds` posted now and returns the lane start time: the lane is a
  /// single resource (one fabric port per rank), so a post queues behind
  /// earlier in-flight operations but not behind the main line.
  double post_async_comm(double seconds) noexcept {
    const double start = std::max(now_, comm_lane_end_);
    comm_lane_end_ = start + seconds;
    return start;
  }

  /// Completes an asynchronous operation of `seconds` that (after
  /// exchanging entry times with its peers) finishes at absolute
  /// `completion`. Accounting matches the blocking path when nothing
  /// overlapped: the main line is idle until the operation's effective
  /// start, then busy communicating until `completion`. Any part of the
  /// cost already covered by the main line (compute that ran past the
  /// operation's start) is counted as hidden communication — the overlap
  /// win of a pipelined schedule.
  void complete_async_comm(double completion, double seconds) noexcept {
    comm_lane_end_ = std::max(comm_lane_end_, completion);
    const double start = completion - seconds;
    if (now_ < start) {
      idle_ += start - now_;
      now_ = start;
    }
    const double charged = completion > now_ ? completion - now_ : 0.0;
    comm_ += charged;
    hidden_comm_ += seconds - charged;
    if (completion > now_) now_ = completion;
  }

  /// End of the communication lane: completion time of the latest posted
  /// transfer, never earlier than the main line's last comm activity.
  double comm_lane_end() const noexcept {
    return std::max(now_, comm_lane_end_);
  }

  double compute_seconds() const noexcept { return compute_; }
  double comm_seconds() const noexcept { return comm_; }
  double idle_seconds() const noexcept { return idle_; }

  /// Communication cost hidden behind the main line by async overlap.
  double hidden_comm_seconds() const noexcept { return hidden_comm_; }

  void reset() noexcept { *this = VirtualClock{}; }

 private:
  double now_ = 0.0;
  double comm_lane_end_ = 0.0;
  double compute_ = 0.0;
  double comm_ = 0.0;
  double idle_ = 0.0;
  double hidden_comm_ = 0.0;
};

}  // namespace summagen::trace

// Per-rank virtual clocks.
//
// The reproduction runs on a homogeneous multicore host, but the paper's
// platform is a 2.5 TFLOPs heterogeneous node. We therefore keep two timing
// domains (DESIGN.md §5.1): real wall time, and *virtual* time advanced by
// performance models (device speed functions for compute, Hockney for
// communication). Figure benches report virtual time; tests may check both.
#pragma once

#include <algorithm>
#include <cstdint>

namespace summagen::trace {

/// Virtual clock of one rank / abstract processor. Seconds, monotonic.
///
/// Accounting buckets let experiments split total elapsed time into
/// computation, communication, and idle (waiting at synchronisation), which
/// is exactly the decomposition of the paper's Figures 6b/6c and 7b/7c.
class VirtualClock {
 public:
  double now() const noexcept { return now_; }

  /// Advances the clock by `seconds` of local computation.
  void advance_compute(double seconds) noexcept {
    now_ += seconds;
    compute_ += seconds;
  }

  /// Advances the clock by `seconds` of communication activity.
  void advance_comm(double seconds) noexcept {
    now_ += seconds;
    comm_ += seconds;
  }

  /// Jumps forward to `target` (synchronisation with a peer that finishes
  /// later); the gap is accounted as idle time. No-op if target <= now.
  void wait_until(double target) noexcept {
    if (target > now_) {
      idle_ += target - now_;
      now_ = target;
    }
  }

  double compute_seconds() const noexcept { return compute_; }
  double comm_seconds() const noexcept { return comm_; }
  double idle_seconds() const noexcept { return idle_; }

  void reset() noexcept { *this = VirtualClock{}; }

 private:
  double now_ = 0.0;
  double compute_ = 0.0;
  double comm_ = 0.0;
  double idle_ = 0.0;
};

}  // namespace summagen::trace

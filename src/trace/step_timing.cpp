#include "src/trace/step_timing.hpp"

namespace summagen::trace {

double step_ratio(const StepSample& sample) {
  if (sample.predicted_s <= 0.0) return 1.0;
  return sample.observed_s / sample.predicted_s;
}

std::vector<double> compute_step_durations(const std::vector<Event>& events,
                                           int rank) {
  std::vector<double> out;
  for (const Event& e : events) {
    if (e.rank != rank || e.kind != EventKind::kCompute) continue;
    out.push_back(e.vend - e.vstart);
  }
  return out;
}

}  // namespace summagen::trace

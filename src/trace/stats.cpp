#include "src/trace/stats.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace summagen::trace {
namespace {

// t_{0.975, df} for df = 1..30.
constexpr std::array<double, 30> kT975 = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};

// Inverse CDF of the standard normal (Acklam's rational approximation,
// relative error < 1.15e-9).
double normal_quantile(double p) {
  if (p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument("normal_quantile: p outside (0,1)");
  }
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > phigh) {
    q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

// Standard normal CDF via erf.
double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace

double mean(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("mean: empty sample");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double sample_stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double student_t_critical(int df, double confidence) {
  if (df < 1) throw std::invalid_argument("student_t_critical: df < 1");
  if (std::abs(confidence - 0.95) < 1e-12 && df <= 30) {
    return kT975[static_cast<std::size_t>(df - 1)];
  }
  // Cornish-Fisher expansion around the normal quantile.
  const double p = 0.5 + confidence / 2.0;
  const double z = normal_quantile(p);
  const double g1 = (z * z * z + z) / 4.0;
  const double g2 = (5 * std::pow(z, 5) + 16 * z * z * z + 3 * z) / 96.0;
  const double g3 =
      (3 * std::pow(z, 7) + 19 * std::pow(z, 5) + 17 * z * z * z - 15 * z) /
      384.0;
  const double n = static_cast<double>(df);
  return z + g1 / n + g2 / (n * n) + g3 / (n * n * n);
}

double confidence_halfwidth(const std::vector<double>& xs, double confidence) {
  if (xs.size() < 2) return 0.0;
  const double s = sample_stddev(xs);
  const double t =
      student_t_critical(static_cast<int>(xs.size()) - 1, confidence);
  return t * s / std::sqrt(static_cast<double>(xs.size()));
}

MeasuredPoint measure_until_precise(const std::function<double()>& experiment,
                                    const MeasureOptions& opts) {
  if (opts.min_reps < 2) {
    throw std::invalid_argument("measure_until_precise: min_reps < 2");
  }
  MeasuredPoint out;
  while (out.repetitions < opts.max_reps) {
    out.samples.push_back(experiment());
    ++out.repetitions;
    if (out.repetitions < opts.min_reps) continue;
    out.mean = mean(out.samples);
    out.ci_halfwidth = confidence_halfwidth(out.samples, opts.confidence);
    if (out.mean > 0.0 && out.ci_halfwidth <= opts.precision * out.mean) {
      out.converged = true;
      break;
    }
  }
  if (!out.samples.empty()) {
    out.mean = mean(out.samples);
    out.ci_halfwidth = confidence_halfwidth(out.samples, 0.95);
  }
  return out;
}

double chi_squared_critical(int df, double confidence) {
  if (df < 1) throw std::invalid_argument("chi_squared_critical: df < 1");
  // Wilson-Hilferty: chi2_p(df) ~ df * (1 - 2/(9 df) + z_p sqrt(2/(9 df)))^3
  const double z = normal_quantile(confidence);
  const double n = static_cast<double>(df);
  const double term = 1.0 - 2.0 / (9.0 * n) + z * std::sqrt(2.0 / (9.0 * n));
  return n * term * term * term;
}

ChiSquaredResult chi_squared_normality(const std::vector<double>& xs) {
  ChiSquaredResult res;
  if (xs.size() < 8) {
    // Too few observations to bin meaningfully; report trivially plausible.
    res.normality_plausible = true;
    return res;
  }
  const double m = mean(xs);
  const double s = sample_stddev(xs);
  if (s == 0.0) {
    res.normality_plausible = true;  // degenerate constant sample
    return res;
  }
  // Equiprobable cells, ~5 expected observations each, at least 4 cells.
  const int cells =
      std::max(4, static_cast<int>(static_cast<double>(xs.size()) / 5.0));
  std::vector<int> counts(static_cast<std::size_t>(cells), 0);
  for (double x : xs) {
    const double u = normal_cdf((x - m) / s);
    int cell = static_cast<int>(u * cells);
    cell = std::clamp(cell, 0, cells - 1);
    ++counts[static_cast<std::size_t>(cell)];
  }
  const double expected = static_cast<double>(xs.size()) / cells;
  double stat = 0.0;
  for (int c : counts) {
    const double d = static_cast<double>(c) - expected;
    stat += d * d / expected;
  }
  res.statistic = stat;
  // Two parameters (mean, stddev) estimated from the data.
  res.degrees_of_freedom = std::max(1, cells - 1 - 2);
  res.critical_value = chi_squared_critical(res.degrees_of_freedom, 0.95);
  res.normality_plausible = stat <= res.critical_value;
  return res;
}

double percentage_spread(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("percentage_spread: empty");
  const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
  if (*lo <= 0.0) throw std::invalid_argument("percentage_spread: non-positive");
  return (*hi - *lo) / *lo * 100.0;
}

}  // namespace summagen::trace

// Energy model and WattsUp-style meter simulator (paper Section VI-C).
//
// The paper measures node power with a WattsUp Pro meter (1 sample/s, +-3%
// accuracy, 0.5 W minimum) between the wall outlet and the server, with
// fans pinned at full speed so their draw folds into the static power
// (measured: 230 W). Dynamic energy is then
//     E_D = E_T - P_S * T_E                                   (Eq. 5)
// with E_T the total metered energy of a run of length T_E.
//
// Here power is modeled: each abstract processor draws its device's
// `dynamic_power_w` while computing and `comm_power_w` while communicating
// (intervals taken from the run's EventLog), on top of the platform static
// power. Two estimators are provided:
//   * `dynamic_energy_exact`  - closed-form integration of the intervals;
//   * `simulate_wattsup`      - 1 Hz sampling with meter noise, mirroring
//                               the HCLWattsUp measurement path.
#pragma once

#include <cstdint>
#include <vector>

#include "src/device/platform.hpp"
#include "src/trace/events.hpp"

namespace summagen::energy {

/// Energy of one run, joules.
struct EnergyBreakdown {
  double elapsed_s = 0.0;   ///< T_E (parallel execution time)
  double static_j = 0.0;    ///< P_S * T_E
  double dynamic_j = 0.0;   ///< E_D
  double total_j = 0.0;     ///< E_T = static + dynamic
  std::vector<double> per_rank_dynamic_j;
};

/// Exact interval integration of the events against the platform's
/// device powers. `elapsed_s` is the run's parallel execution time (max
/// virtual completion over ranks). Event ranks index platform devices.
EnergyBreakdown dynamic_energy_exact(const std::vector<trace::Event>& events,
                                     const device::Platform& platform,
                                     double elapsed_s);

/// Meter configuration (defaults = the paper's WattsUp Pro).
struct MeterOptions {
  double sample_period_s = 1.0;
  double accuracy = 0.03;     ///< +-3% multiplicative noise
  double min_watts = 0.5;     ///< readings below this floor clip to 0
  double floor_accuracy_w = 0.3;  ///< +-0.3 W additive noise near the floor
  std::uint64_t seed = 0x7a77;
};

/// A simulated meter trace.
struct MeterReading {
  std::vector<double> samples_w;  ///< one per sample period
  double total_j = 0.0;           ///< E_T integrated from the samples
  double elapsed_s = 0.0;
};

/// Samples total node power over [0, elapsed_s] at the meter cadence with
/// multiplicative accuracy noise, and integrates to E_T.
MeterReading simulate_wattsup(const std::vector<trace::Event>& events,
                              const device::Platform& platform,
                              double elapsed_s, const MeterOptions& opts = {});

/// The paper's Eq. 5: E_D = E_T - P_S * T_E.
double dynamic_from_meter(const MeterReading& reading, double static_power_w);

/// Instantaneous modeled node power at virtual time t (static + active
/// device draws); exposed for tests and the meter.
double instantaneous_power(const std::vector<trace::Event>& events,
                           const device::Platform& platform, double t);

}  // namespace summagen::energy

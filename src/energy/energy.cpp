#include "src/energy/energy.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/util/rng.hpp"

namespace summagen::energy {
namespace {

bool is_compute(trace::EventKind k) {
  return k == trace::EventKind::kCompute;
}

// Transfers (host<->device staging) and MPI traffic draw the comm power.
bool is_comm(trace::EventKind k) {
  return k == trace::EventKind::kBcast || k == trace::EventKind::kBarrier ||
         k == trace::EventKind::kTransfer;
}

double event_watts(const trace::Event& e, const device::Platform& platform) {
  if (e.rank < 0 || e.rank >= static_cast<int>(platform.devices.size())) {
    return 0.0;  // events from auxiliary actors carry no device power
  }
  const auto& dev = platform.devices[static_cast<std::size_t>(e.rank)];
  if (is_compute(e.kind)) return dev.dynamic_power_w;
  if (is_comm(e.kind)) return dev.comm_power_w;
  return 0.0;
}

}  // namespace

EnergyBreakdown dynamic_energy_exact(const std::vector<trace::Event>& events,
                                     const device::Platform& platform,
                                     double elapsed_s) {
  if (elapsed_s < 0.0) {
    throw std::invalid_argument("dynamic_energy_exact: negative elapsed");
  }
  EnergyBreakdown out;
  out.elapsed_s = elapsed_s;
  out.static_j = platform.static_power_w * elapsed_s;
  out.per_rank_dynamic_j.assign(platform.devices.size(), 0.0);
  for (const trace::Event& e : events) {
    const double watts = event_watts(e, platform);
    if (watts <= 0.0) continue;
    const double dt = std::max(0.0, e.vend - e.vstart);
    out.per_rank_dynamic_j[static_cast<std::size_t>(e.rank)] += watts * dt;
  }
  for (double j : out.per_rank_dynamic_j) out.dynamic_j += j;
  out.total_j = out.static_j + out.dynamic_j;
  return out;
}

double instantaneous_power(const std::vector<trace::Event>& events,
                           const device::Platform& platform, double t) {
  double watts = platform.static_power_w;
  for (const trace::Event& e : events) {
    if (t < e.vstart || t >= e.vend) continue;
    watts += event_watts(e, platform);
  }
  return watts;
}

MeterReading simulate_wattsup(const std::vector<trace::Event>& events,
                              const device::Platform& platform,
                              double elapsed_s, const MeterOptions& opts) {
  if (opts.sample_period_s <= 0.0) {
    throw std::invalid_argument("simulate_wattsup: bad sample period");
  }
  MeterReading reading;
  reading.elapsed_s = elapsed_s;
  util::Rng rng(opts.seed);

  // The meter reports the average power of each period; approximate with
  // the midpoint sample, then apply the datasheet noise terms.
  for (double t0 = 0.0; t0 < elapsed_s; t0 += opts.sample_period_s) {
    const double t_mid = std::min(t0 + 0.5 * opts.sample_period_s, elapsed_s);
    double w = instantaneous_power(events, platform, t_mid);
    w *= 1.0 + rng.uniform(-opts.accuracy, opts.accuracy);
    w += rng.uniform(-opts.floor_accuracy_w, opts.floor_accuracy_w);
    if (w < opts.min_watts) w = 0.0;
    reading.samples_w.push_back(w);
    const double dt = std::min(opts.sample_period_s, elapsed_s - t0);
    reading.total_j += w * dt;
  }
  return reading;
}

double dynamic_from_meter(const MeterReading& reading,
                          double static_power_w) {
  return reading.total_j - static_power_w * reading.elapsed_s;
}

}  // namespace summagen::energy

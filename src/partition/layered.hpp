// Layer-based rectangular partitioning (Liu, Shi, Zhang, Robertazzi line):
// the unit square is cut into full-width horizontal layers, each layer
// split vertically among a consecutive group of processors. This is the
// row-major transpose of the Beaumont et al. column-based family, and the
// same dynamic program finds the optimal layer structure — we reuse it on
// the transposed problem and transpose the resulting spec.
//
// The family joins the re-partitioning choice set of the adaptive runner
// (DESIGN.md §5.13): at drift time the runner picks the candidate layout
// with the smallest predicted makespan over the live-measured speeds.
#pragma once

#include <cstdint>
#include <vector>

#include "src/partition/spec.hpp"

namespace summagen::partition {

/// Builds a rectangular PartitionSpec of an n x n matrix from integer areas
/// using the optimal layer-based (horizontal layers, vertical splits)
/// arrangement — the transpose of column_based_partition. Same rounding
/// caveats: achieved areas approximate the requests.
PartitionSpec layered_partition(std::int64_t n,
                                const std::vector<std::int64_t>& areas);

/// Transposes a PartitionSpec across the main diagonal: rows become
/// columns, subp(i, j) becomes subp(j, i). The transpose of a valid spec
/// is valid (exact cover and rectangular-per-rank structure are preserved).
PartitionSpec transpose_spec(const PartitionSpec& spec);

}  // namespace summagen::partition

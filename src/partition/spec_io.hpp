// Text serialisation of PartitionSpec in the paper's own notation.
//
// Section IV specifies partitions by listing the arrays, e.g. for the
// square-corner example:
//
//     n = 16
//     subplda = 3
//     subpldb = 3
//     subp = {0, 1, 1, 1, 1, 1, 1, 1, 2}
//     subph = {9, 3, 4}
//     subpw = {9, 3, 4}
//
// This module reads and writes exactly that format (order-insensitive,
// `#` comments and blank lines allowed), so layouts can be exchanged with
// the summagen_cli tool, stored alongside experiments, or written by
// external partitioners.
#pragma once

#include <stdexcept>
#include <string>

#include "src/partition/spec.hpp"

namespace summagen::partition {

/// Typed parse/validation failure raised by `parse_spec`. Derives from
/// std::invalid_argument so untyped callers keep working; typed callers get
/// the offending line and key for precise diagnostics:
///   * `line()` — 1-based line of the offending statement, 0 when the error
///     concerns the document as a whole (e.g. a missing key);
///   * `key()`  — the spec key the error is attributed to ("" for pure
///     syntax errors). Semantic failures (arrays of the wrong length,
///     extents that do not cover n x n, out-of-range owners) are attributed
///     to the line where that key was defined.
class SpecParseError : public std::invalid_argument {
 public:
  SpecParseError(int line, std::string key, const std::string& message);
  int line() const noexcept { return line_; }
  const std::string& key() const noexcept { return key_; }

 private:
  int line_;
  std::string key_;
};

/// Renders the spec in the paper's array notation (always parseable by
/// `parse_spec`).
std::string to_text(const PartitionSpec& spec);

/// Parses the notation above. Throws SpecParseError (an
/// std::invalid_argument) carrying line context on syntax errors,
/// missing/duplicate keys, or a semantically invalid spec: mis-sized
/// arrays, negative extents, row/column extents that do not sum to n (a
/// non-covering partition), or owner ranks outside [0, nprocs).
PartitionSpec parse_spec(const std::string& text);

/// File convenience wrappers (throw std::runtime_error on I/O failure).
void save_spec(const std::string& path, const PartitionSpec& spec);
PartitionSpec load_spec(const std::string& path);

}  // namespace summagen::partition

// Text serialisation of PartitionSpec in the paper's own notation.
//
// Section IV specifies partitions by listing the arrays, e.g. for the
// square-corner example:
//
//     n = 16
//     subplda = 3
//     subpldb = 3
//     subp = {0, 1, 1, 1, 1, 1, 1, 1, 2}
//     subph = {9, 3, 4}
//     subpw = {9, 3, 4}
//
// This module reads and writes exactly that format (order-insensitive,
// `#` comments and blank lines allowed), so layouts can be exchanged with
// the summagen_cli tool, stored alongside experiments, or written by
// external partitioners.
#pragma once

#include <string>

#include "src/partition/spec.hpp"

namespace summagen::partition {

/// Renders the spec in the paper's array notation (always parseable by
/// `parse_spec`).
std::string to_text(const PartitionSpec& spec);

/// Parses the notation above. Throws std::invalid_argument naming the
/// offending line on syntax errors, missing/duplicate keys, or an invalid
/// resulting spec (validate() is applied).
PartitionSpec parse_spec(const std::string& text);

/// File convenience wrappers (throw std::runtime_error on I/O failure).
void save_spec(const std::string& path, const PartitionSpec& spec);
PartitionSpec load_spec(const std::string& path);

}  // namespace summagen::partition

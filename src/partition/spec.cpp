#include "src/partition/spec.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace summagen::partition {

int PartitionSpec::nprocs() const {
  int top = -1;
  for (int r : subp) top = std::max(top, r);
  return top + 1;
}

void PartitionSpec::validate(int expected_procs) const {
  if (n <= 0) throw std::invalid_argument("PartitionSpec: n <= 0");
  if (subplda <= 0 || subpldb <= 0) {
    throw std::invalid_argument("PartitionSpec: empty sub-partition grid");
  }
  if (subp.size() != static_cast<std::size_t>(subplda) *
                         static_cast<std::size_t>(subpldb)) {
    throw std::invalid_argument("PartitionSpec: subp size != subplda*subpldb");
  }
  if (subph.size() != static_cast<std::size_t>(subplda)) {
    throw std::invalid_argument("PartitionSpec: subph size != subplda");
  }
  if (subpw.size() != static_cast<std::size_t>(subpldb)) {
    throw std::invalid_argument("PartitionSpec: subpw size != subpldb");
  }
  std::int64_t hsum = 0;
  for (std::int64_t h : subph) {
    if (h < 0) throw std::invalid_argument("PartitionSpec: negative height");
    hsum += h;
  }
  if (hsum != n) {
    throw std::invalid_argument("PartitionSpec: heights sum to " +
                                std::to_string(hsum) + ", expected " +
                                std::to_string(n));
  }
  std::int64_t wsum = 0;
  for (std::int64_t w : subpw) {
    if (w < 0) throw std::invalid_argument("PartitionSpec: negative width");
    wsum += w;
  }
  if (wsum != n) {
    throw std::invalid_argument("PartitionSpec: widths sum to " +
                                std::to_string(wsum) + ", expected " +
                                std::to_string(n));
  }
  for (int r : subp) {
    if (r < 0) throw std::invalid_argument("PartitionSpec: negative owner");
    if (expected_procs >= 0 && r >= expected_procs) {
      throw std::invalid_argument("PartitionSpec: owner " + std::to_string(r) +
                                  " >= nprocs " +
                                  std::to_string(expected_procs));
    }
  }
}

std::vector<std::int64_t> PartitionSpec::row_offsets() const {
  std::vector<std::int64_t> off(static_cast<std::size_t>(subplda) + 1, 0);
  for (int i = 0; i < subplda; ++i) {
    off[static_cast<std::size_t>(i) + 1] =
        off[static_cast<std::size_t>(i)] + subph[static_cast<std::size_t>(i)];
  }
  return off;
}

std::vector<std::int64_t> PartitionSpec::col_offsets() const {
  std::vector<std::int64_t> off(static_cast<std::size_t>(subpldb) + 1, 0);
  for (int j = 0; j < subpldb; ++j) {
    off[static_cast<std::size_t>(j) + 1] =
        off[static_cast<std::size_t>(j)] + subpw[static_cast<std::size_t>(j)];
  }
  return off;
}

bool PartitionSpec::row_contains(int rank, int bi) const {
  for (int bj = 0; bj < subpldb; ++bj) {
    if (owner(bi, bj) == rank) return true;
  }
  return false;
}

bool PartitionSpec::col_contains(int rank, int bj) const {
  for (int bi = 0; bi < subplda; ++bi) {
    if (owner(bi, bj) == rank) return true;
  }
  return false;
}

std::vector<int> PartitionSpec::ranks_in_row(int bi) const {
  std::vector<int> out;
  for (int bj = 0; bj < subpldb; ++bj) out.push_back(owner(bi, bj));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<int> PartitionSpec::ranks_in_col(int bj) const {
  std::vector<int> out;
  for (int bi = 0; bi < subplda; ++bi) out.push_back(owner(bi, bj));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::pair<int, int> PartitionSpec::row_span(int rank) const {
  int first = -1, last = -1;
  for (int bi = 0; bi < subplda; ++bi) {
    if (row_contains(rank, bi)) {
      if (first < 0) first = bi;
      last = bi;
    }
  }
  if (first < 0) return {0, 0};
  return {first, last - first + 1};
}

std::pair<int, int> PartitionSpec::col_span(int rank) const {
  int first = -1, last = -1;
  for (int bj = 0; bj < subpldb; ++bj) {
    if (col_contains(rank, bj)) {
      if (first < 0) first = bj;
      last = bj;
    }
  }
  if (first < 0) return {0, 0};
  return {first, last - first + 1};
}

std::int64_t PartitionSpec::area_of(int rank) const {
  std::int64_t area = 0;
  for (int bi = 0; bi < subplda; ++bi) {
    for (int bj = 0; bj < subpldb; ++bj) {
      if (owner(bi, bj) == rank) {
        area += subph[static_cast<std::size_t>(bi)] *
                subpw[static_cast<std::size_t>(bj)];
      }
    }
  }
  return area;
}

Rect PartitionSpec::covering(int rank) const {
  const auto roff = row_offsets();
  const auto coff = col_offsets();
  std::int64_t r0 = -1, r1 = -1, c0 = -1, c1 = -1;
  for (int bi = 0; bi < subplda; ++bi) {
    if (subph[static_cast<std::size_t>(bi)] == 0) continue;
    for (int bj = 0; bj < subpldb; ++bj) {
      if (subpw[static_cast<std::size_t>(bj)] == 0) continue;
      if (owner(bi, bj) != rank) continue;
      const std::int64_t top = roff[static_cast<std::size_t>(bi)];
      const std::int64_t bot = roff[static_cast<std::size_t>(bi) + 1];
      const std::int64_t lef = coff[static_cast<std::size_t>(bj)];
      const std::int64_t rig = coff[static_cast<std::size_t>(bj) + 1];
      if (r0 < 0 || top < r0) r0 = top;
      if (bot > r1) r1 = bot;
      if (c0 < 0 || lef < c0) c0 = lef;
      if (rig > c1) c1 = rig;
    }
  }
  if (r0 < 0) return {};
  return {r0, c0, r1 - r0, c1 - c0};
}

std::int64_t PartitionSpec::half_perimeter(int rank) const {
  const Rect r = covering(rank);
  return r.rows + r.cols;
}

std::int64_t PartitionSpec::total_half_perimeter() const {
  std::int64_t total = 0;
  for (int r = 0; r < nprocs(); ++r) total += half_perimeter(r);
  return total;
}

bool PartitionSpec::is_rectangular(int rank) const {
  const Rect r = covering(rank);
  return area_of(rank) == r.rows * r.cols;
}

std::string PartitionSpec::render(std::int64_t cell) const {
  if (cell <= 0) throw std::invalid_argument("render: cell <= 0");
  const auto roff = row_offsets();
  const auto coff = col_offsets();
  std::string out;
  for (std::int64_t i = 0; i < n; i += cell) {
    for (std::int64_t j = 0; j < n; j += cell) {
      // Find the sub-partition containing element (i, j).
      const auto bi = static_cast<int>(
          std::upper_bound(roff.begin(), roff.end(), i) - roff.begin() - 1);
      const auto bj = static_cast<int>(
          std::upper_bound(coff.begin(), coff.end(), j) - coff.begin() - 1);
      const int r = owner(bi, bj);
      out += (r < 10) ? static_cast<char>('0' + r)
                      : static_cast<char>('a' + (r - 10));
    }
    out += '\n';
  }
  return out;
}

}  // namespace summagen::partition

#include "src/partition/areas.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace summagen::partition {

std::vector<std::int64_t> partition_areas_cpm(
    std::int64_t total, const std::vector<double>& speeds) {
  if (total <= 0) throw std::invalid_argument("partition_areas_cpm: total<=0");
  if (speeds.empty()) {
    throw std::invalid_argument("partition_areas_cpm: no speeds");
  }
  double sum = 0.0;
  for (double s : speeds) {
    if (s <= 0.0) {
      throw std::invalid_argument("partition_areas_cpm: non-positive speed");
    }
    sum += s;
  }
  const std::size_t p = speeds.size();
  std::vector<std::int64_t> areas(p);
  std::vector<std::pair<double, std::size_t>> remainders(p);
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < p; ++i) {
    const double exact = static_cast<double>(total) * speeds[i] / sum;
    areas[i] = static_cast<std::int64_t>(std::floor(exact));
    remainders[i] = {exact - std::floor(exact), i};
    assigned += areas[i];
  }
  // Largest-remainder apportionment of the leftover elements.
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; assigned < total; ++i, ++assigned) {
    ++areas[remainders[i % p].second];
  }
  return areas;
}

double distribution_time(
    std::int64_t n, const std::vector<const device::SpeedFunction*>& speeds,
    const std::vector<std::int64_t>& areas) {
  if (speeds.size() != areas.size()) {
    throw std::invalid_argument("distribution_time: size mismatch");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    worst = std::max(worst, device::zone_time(*speeds[i],
                                              static_cast<double>(areas[i]),
                                              static_cast<double>(n)));
  }
  return worst;
}

namespace {

// One pass of unit moves: repeatedly move `delta` area from the bottleneck
// processor to the best-improving recipient while the makespan improves.
bool refine_once(std::int64_t n,
                 const std::vector<const device::SpeedFunction*>& speeds,
                 std::vector<std::int64_t>& areas, std::int64_t delta) {
  const std::size_t p = speeds.size();
  auto t = [&](std::size_t i, std::int64_t a) {
    return device::zone_time(*speeds[i], static_cast<double>(a),
                             static_cast<double>(n));
  };
  // Find the bottleneck.
  std::size_t worst = 0;
  double worst_t = -1.0;
  for (std::size_t i = 0; i < p; ++i) {
    const double ti = t(i, areas[i]);
    if (ti > worst_t) {
      worst_t = ti;
      worst = i;
    }
  }
  if (areas[worst] < delta) return false;
  // Try giving delta to each other processor; accept the best strict win.
  double best_new = worst_t;
  std::size_t best_j = p;
  for (std::size_t j = 0; j < p; ++j) {
    if (j == worst) continue;
    double cand = 0.0;
    for (std::size_t i = 0; i < p; ++i) {
      std::int64_t a = areas[i];
      if (i == worst) a -= delta;
      if (i == j) a += delta;
      cand = std::max(cand, t(i, a));
    }
    if (cand < best_new) {
      best_new = cand;
      best_j = j;
    }
  }
  if (best_j == p) return false;
  areas[worst] -= delta;
  areas[best_j] += delta;
  return true;
}

}  // namespace

FpmResult partition_areas_fpm(
    std::int64_t n, const std::vector<const device::SpeedFunction*>& speeds,
    const FpmOptions& opts) {
  if (n <= 0) throw std::invalid_argument("partition_areas_fpm: n <= 0");
  if (speeds.empty()) {
    throw std::invalid_argument("partition_areas_fpm: no speed functions");
  }
  const std::size_t p = speeds.size();
  const std::int64_t total = n * n;

  if (p == 1) {
    FpmResult res;
    res.areas = {total};
    res.tcomp = distribution_time(n, speeds, res.areas);
    return res;
  }

  std::int64_t step = opts.grid_step;
  if (step <= 0) step = std::max<std::int64_t>(1, total / 1024);
  const std::int64_t slots = total / step;  // areas quantised as k*step
  if (slots < static_cast<std::int64_t>(p)) {
    throw std::invalid_argument("partition_areas_fpm: grid step too coarse");
  }

  // DP over processors: best[i][w] = minimal makespan assigning w slots to
  // processors 0..i. The last processor absorbs the rounding remainder
  // total - slots*step (at most step-1 elements; harmless vs refinement).
  const auto W = static_cast<std::size_t>(slots);
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> prev(W + 1, inf), cur(W + 1, inf);
  // choice[i][w]: slots given to processor i in the best solution.
  std::vector<std::vector<std::int32_t>> choice(
      p, std::vector<std::int32_t>(W + 1, -1));

  auto t_of = [&](std::size_t i, std::int64_t a) {
    return device::zone_time(*speeds[i], static_cast<double>(a),
                             static_cast<double>(n));
  };

  for (std::size_t w = 0; w <= W; ++w) {
    prev[w] = t_of(0, static_cast<std::int64_t>(w) * step);
    choice[0][w] = static_cast<std::int32_t>(w);
  }
  for (std::size_t i = 1; i < p; ++i) {
    for (std::size_t w = 0; w <= W; ++w) {
      double best = inf;
      std::int32_t best_k = -1;
      for (std::size_t k = 0; k <= w; ++k) {
        const double mine = t_of(i, static_cast<std::int64_t>(k) * step);
        if (mine >= best) continue;  // monotone prune on own time
        const double m = std::max(mine, prev[w - k]);
        if (m < best) {
          best = m;
          best_k = static_cast<std::int32_t>(k);
        }
      }
      cur[w] = best;
      choice[i][w] = best_k;
    }
    std::swap(prev, cur);
  }

  // Reconstruct.
  FpmResult res;
  res.areas.assign(p, 0);
  std::size_t w = W;
  for (std::size_t i = p; i-- > 0;) {
    const std::int32_t k = choice[i][w];
    res.areas[i] = static_cast<std::int64_t>(k) * step;
    w -= static_cast<std::size_t>(k);
  }
  // Fold the grid remainder into the bottom (it is < step elements).
  std::int64_t used = std::accumulate(res.areas.begin(), res.areas.end(),
                                      std::int64_t{0});
  res.areas[0] += total - used;

  // Unit-granularity local refinement with a shrinking step schedule.
  std::int64_t delta = std::max<std::int64_t>(1, step / 2);
  int iters = opts.refine_iters;
  while (delta >= 1 && iters > 0) {
    bool moved = false;
    while (iters > 0 && refine_once(n, speeds, res.areas, delta)) {
      moved = true;
      --iters;
    }
    if (delta == 1 && !moved) break;
    delta /= 2;
  }

  res.tcomp = distribution_time(n, speeds, res.areas);
  return res;
}

FpmResult partition_areas_fpm(std::int64_t n,
                              const std::vector<device::SpeedFunction>& speeds,
                              const FpmOptions& opts) {
  std::vector<const device::SpeedFunction*> ptrs;
  ptrs.reserve(speeds.size());
  for (const auto& s : speeds) ptrs.push_back(&s);
  return partition_areas_fpm(n, ptrs, opts);
}

}  // namespace summagen::partition

#include "src/partition/spec_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace summagen::partition {
namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

// Parses "{1, 2, 3}" (braces optional) into integers.
std::vector<std::int64_t> parse_list(const std::string& value,
                                     int line_number) {
  std::string body = trim(value);
  if (!body.empty() && body.front() == '{') {
    if (body.back() != '}') {
      throw std::invalid_argument("parse_spec: line " +
                                  std::to_string(line_number) +
                                  ": unterminated '{'");
    }
    body = body.substr(1, body.size() - 2);
  }
  std::vector<std::int64_t> out;
  std::stringstream ss(body);
  std::string token;
  while (std::getline(ss, token, ',')) {
    token = trim(token);
    if (token.empty()) {
      throw std::invalid_argument("parse_spec: line " +
                                  std::to_string(line_number) +
                                  ": empty list element");
    }
    try {
      std::size_t used = 0;
      out.push_back(std::stoll(token, &used));
      if (used != token.size()) throw std::invalid_argument(token);
    } catch (const std::exception&) {
      throw std::invalid_argument("parse_spec: line " +
                                  std::to_string(line_number) +
                                  ": bad integer '" + token + "'");
    }
  }
  return out;
}

std::int64_t parse_scalar(const std::string& value, int line_number) {
  const auto list = parse_list(value, line_number);
  if (list.size() != 1) {
    throw std::invalid_argument("parse_spec: line " +
                                std::to_string(line_number) +
                                ": expected a single integer");
  }
  return list.front();
}

}  // namespace

std::string to_text(const PartitionSpec& spec) {
  std::ostringstream os;
  auto list = [&](const char* name, const auto& values) {
    os << name << " = {";
    for (std::size_t i = 0; i < values.size(); ++i) {
      os << (i ? ", " : "") << values[i];
    }
    os << "}\n";
  };
  os << "# SummaGen partition (paper Section IV notation)\n";
  os << "n = " << spec.n << "\n";
  os << "subplda = " << spec.subplda << "\n";
  os << "subpldb = " << spec.subpldb << "\n";
  list("subp", spec.subp);
  list("subph", spec.subph);
  list("subpw", spec.subpw);
  return os.str();
}

PartitionSpec parse_spec(const std::string& text) {
  PartitionSpec spec;
  bool has_n = false, has_lda = false, has_ldb = false;
  bool has_subp = false, has_subph = false, has_subpw = false;

  std::stringstream ss(text);
  std::string line;
  int line_number = 0;
  while (std::getline(ss, line)) {
    ++line_number;
    // Strip comments; the paper uses ';' between assignments too.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::stringstream statements(line);
    std::string statement;
    while (std::getline(statements, statement, ';')) {
      statement = trim(statement);
      if (statement.empty()) continue;
      const auto eq = statement.find('=');
      if (eq == std::string::npos) {
        throw std::invalid_argument("parse_spec: line " +
                                    std::to_string(line_number) +
                                    ": expected 'key = value'");
      }
      const std::string key = trim(statement.substr(0, eq));
      const std::string value = statement.substr(eq + 1);
      auto once = [&](bool& flag) {
        if (flag) {
          throw std::invalid_argument("parse_spec: line " +
                                      std::to_string(line_number) +
                                      ": duplicate key '" + key + "'");
        }
        flag = true;
      };
      if (key == "n") {
        once(has_n);
        spec.n = parse_scalar(value, line_number);
      } else if (key == "subplda") {
        once(has_lda);
        spec.subplda = static_cast<int>(parse_scalar(value, line_number));
      } else if (key == "subpldb") {
        once(has_ldb);
        spec.subpldb = static_cast<int>(parse_scalar(value, line_number));
      } else if (key == "subp") {
        once(has_subp);
        for (std::int64_t v : parse_list(value, line_number)) {
          spec.subp.push_back(static_cast<int>(v));
        }
      } else if (key == "subph") {
        once(has_subph);
        spec.subph = parse_list(value, line_number);
      } else if (key == "subpw") {
        once(has_subpw);
        spec.subpw = parse_list(value, line_number);
      } else {
        throw std::invalid_argument("parse_spec: line " +
                                    std::to_string(line_number) +
                                    ": unknown key '" + key + "'");
      }
    }
  }
  if (!has_n || !has_lda || !has_ldb || !has_subp || !has_subph ||
      !has_subpw) {
    throw std::invalid_argument(
        "parse_spec: missing one of n/subplda/subpldb/subp/subph/subpw");
  }
  spec.validate();
  return spec;
}

void save_spec(const std::string& path, const PartitionSpec& spec) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_spec: cannot open " + path);
  out << to_text(spec);
  if (!out) throw std::runtime_error("save_spec: write failed: " + path);
}

PartitionSpec load_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_spec: cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_spec(buffer.str());
}

}  // namespace summagen::partition

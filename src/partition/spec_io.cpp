#include "src/partition/spec_io.hpp"

#include <fstream>
#include <map>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace summagen::partition {
namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::string describe(int line, const std::string& key,
                     const std::string& message) {
  std::string out = "parse_spec: ";
  if (line > 0) out += "line " + std::to_string(line) + ": ";
  if (!key.empty()) out += "key '" + key + "': ";
  return out + message;
}

// Parses "{1, 2, 3}" (braces optional) into integers.
std::vector<std::int64_t> parse_list(const std::string& value,
                                     int line_number) {
  std::string body = trim(value);
  if (!body.empty() && body.front() == '{') {
    if (body.back() != '}') {
      throw SpecParseError(line_number, "", "unterminated '{'");
    }
    body = body.substr(1, body.size() - 2);
  }
  std::vector<std::int64_t> out;
  std::stringstream ss(body);
  std::string token;
  while (std::getline(ss, token, ',')) {
    token = trim(token);
    if (token.empty()) {
      throw SpecParseError(line_number, "", "empty list element");
    }
    try {
      std::size_t used = 0;
      out.push_back(std::stoll(token, &used));
      if (used != token.size()) throw std::invalid_argument(token);
    } catch (const SpecParseError&) {
      throw;
    } catch (const std::exception&) {
      throw SpecParseError(line_number, "",
                           "bad integer '" + token + "'");
    }
  }
  return out;
}

std::int64_t parse_scalar(const std::string& value, int line_number) {
  const auto list = parse_list(value, line_number);
  if (list.size() != 1) {
    throw SpecParseError(line_number, "", "expected a single integer");
  }
  return list.front();
}

}  // namespace

SpecParseError::SpecParseError(int line, std::string key,
                               const std::string& message)
    : std::invalid_argument(describe(line, key, message)),
      line_(line),
      key_(std::move(key)) {}

std::string to_text(const PartitionSpec& spec) {
  std::ostringstream os;
  auto list = [&](const char* name, const auto& values) {
    os << name << " = {";
    for (std::size_t i = 0; i < values.size(); ++i) {
      os << (i ? ", " : "") << values[i];
    }
    os << "}\n";
  };
  os << "# SummaGen partition (paper Section IV notation)\n";
  os << "n = " << spec.n << "\n";
  os << "subplda = " << spec.subplda << "\n";
  os << "subpldb = " << spec.subpldb << "\n";
  list("subp", spec.subp);
  list("subph", spec.subph);
  list("subpw", spec.subpw);
  return os.str();
}

PartitionSpec parse_spec(const std::string& text) {
  PartitionSpec spec;
  bool has_n = false, has_lda = false, has_ldb = false;
  bool has_subp = false, has_subph = false, has_subpw = false;
  // Where each key was defined, so semantic failures discovered after
  // parsing can still point at the responsible line.
  std::map<std::string, int> key_lines;

  std::stringstream ss(text);
  std::string line;
  int line_number = 0;
  while (std::getline(ss, line)) {
    ++line_number;
    // Strip comments; the paper uses ';' between assignments too.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::stringstream statements(line);
    std::string statement;
    while (std::getline(statements, statement, ';')) {
      statement = trim(statement);
      if (statement.empty()) continue;
      const auto eq = statement.find('=');
      if (eq == std::string::npos) {
        throw SpecParseError(line_number, "", "expected 'key = value'");
      }
      const std::string key = trim(statement.substr(0, eq));
      const std::string value = statement.substr(eq + 1);
      auto once = [&](bool& flag) {
        if (flag) {
          throw SpecParseError(line_number, key, "duplicate key");
        }
        flag = true;
        key_lines[key] = line_number;
      };
      if (key == "n") {
        once(has_n);
        spec.n = parse_scalar(value, line_number);
      } else if (key == "subplda") {
        once(has_lda);
        spec.subplda = static_cast<int>(parse_scalar(value, line_number));
      } else if (key == "subpldb") {
        once(has_ldb);
        spec.subpldb = static_cast<int>(parse_scalar(value, line_number));
      } else if (key == "subp") {
        once(has_subp);
        for (std::int64_t v : parse_list(value, line_number)) {
          spec.subp.push_back(static_cast<int>(v));
        }
      } else if (key == "subph") {
        once(has_subph);
        spec.subph = parse_list(value, line_number);
      } else if (key == "subpw") {
        once(has_subpw);
        spec.subpw = parse_list(value, line_number);
      } else {
        throw SpecParseError(line_number, key, "unknown key");
      }
    }
  }
  if (!has_n || !has_lda || !has_ldb || !has_subp || !has_subph ||
      !has_subpw) {
    throw SpecParseError(
        0, "", "missing one of n/subplda/subpldb/subp/subph/subpw");
  }

  // Semantic checks, each attributed to the line that defined the key.
  const auto fail = [&](const std::string& key,
                        const std::string& message) -> void {
    throw SpecParseError(key_lines.count(key) ? key_lines[key] : 0, key,
                         message);
  };
  if (spec.subplda <= 0) fail("subplda", "must be positive");
  if (spec.subpldb <= 0) fail("subpldb", "must be positive");
  const std::int64_t cells =
      static_cast<std::int64_t>(spec.subplda) * spec.subpldb;
  if (static_cast<std::int64_t>(spec.subp.size()) != cells) {
    fail("subp", "has " + std::to_string(spec.subp.size()) +
                     " owners, expected subplda*subpldb = " +
                     std::to_string(cells));
  }
  const auto check_extents = [&](const std::string& key,
                                 const std::vector<std::int64_t>& extents,
                                 int expected, const char* what) {
    if (static_cast<int>(extents.size()) != expected) {
      fail(key, "has " + std::to_string(extents.size()) + " " + what +
                    ", expected " + std::to_string(expected));
    }
    for (std::int64_t v : extents) {
      if (v < 0) fail(key, "negative extent " + std::to_string(v));
    }
    const std::int64_t sum =
        std::accumulate(extents.begin(), extents.end(), std::int64_t{0});
    if (sum != spec.n) {
      fail(key, std::string(what) + " sum to " + std::to_string(sum) +
                    " but n = " + std::to_string(spec.n) +
                    ": partition does not cover the matrix");
    }
  };
  check_extents("subph", spec.subph, spec.subplda, "row heights");
  check_extents("subpw", spec.subpw, spec.subpldb, "column widths");
  for (int owner : spec.subp) {
    if (owner < 0) fail("subp", "negative owner rank");
  }
  // Anything the structural checks above did not cover.
  try {
    spec.validate();
  } catch (const std::invalid_argument& e) {
    throw SpecParseError(0, "", e.what());
  }
  return spec;
}

void save_spec(const std::string& path, const PartitionSpec& spec) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_spec: cannot open " + path);
  out << to_text(spec);
  if (!out) throw std::runtime_error("save_spec: write failed: " + path);
}

PartitionSpec load_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_spec: cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_spec(buffer.str());
}

}  // namespace summagen::partition

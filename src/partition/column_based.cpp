#include "src/partition/column_based.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace summagen::partition {

ColumnLayout optimal_column_layout(const std::vector<double>& areas) {
  if (areas.empty()) {
    throw std::invalid_argument("optimal_column_layout: no areas");
  }
  double total = 0.0;
  for (double a : areas) {
    if (a < 0.0) throw std::invalid_argument("optimal_column_layout: a < 0");
    total += a;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("optimal_column_layout: zero total area");
  }

  const std::size_t p = areas.size();
  // Sort indices by area descending (BR: columns are consecutive runs of the
  // sorted sequence).
  std::vector<int> order(p);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return areas[static_cast<std::size_t>(a)] >
                                       areas[static_cast<std::size_t>(b)]; });

  // Normalised prefix sums over the sorted areas.
  std::vector<double> prefix(p + 1, 0.0);
  for (std::size_t i = 0; i < p; ++i) {
    prefix[i + 1] =
        prefix[i] + areas[static_cast<std::size_t>(order[i])] / total;
  }

  // dp[i] = minimal cost of arranging the first i sorted processors;
  // a column of processors (j..i-1] has width w = prefix[i]-prefix[j] and
  // contributes (i-j)*w + 1 to the sum of half-perimeters (unit square).
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dp(p + 1, inf);
  std::vector<std::size_t> cut(p + 1, 0);
  dp[0] = 0.0;
  for (std::size_t i = 1; i <= p; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double w = prefix[i] - prefix[j];
      const double cost = dp[j] + static_cast<double>(i - j) * w + 1.0;
      if (cost < dp[i]) {
        dp[i] = cost;
        cut[i] = j;
      }
    }
  }

  ColumnLayout layout;
  std::size_t i = p;
  std::vector<std::vector<int>> cols_rev;
  while (i > 0) {
    const std::size_t j = cut[i];
    std::vector<int> col;
    for (std::size_t k = j; k < i; ++k) col.push_back(order[k]);
    cols_rev.push_back(std::move(col));
    i = j;
  }
  layout.columns.assign(cols_rev.rbegin(), cols_rev.rend());
  layout.continuous_half_perimeter = dp[p];
  return layout;
}

PartitionSpec column_based_partition(std::int64_t n,
                                     const std::vector<std::int64_t>& areas) {
  if (n <= 0) throw std::invalid_argument("column_based_partition: n <= 0");
  std::vector<double> rel(areas.size());
  std::int64_t total = 0;
  for (std::size_t i = 0; i < areas.size(); ++i) {
    if (areas[i] < 0) {
      throw std::invalid_argument("column_based_partition: negative area");
    }
    rel[i] = static_cast<double>(areas[i]);
    total += areas[i];
  }
  if (total != n * n) {
    throw std::invalid_argument(
        "column_based_partition: areas must sum to n*n");
  }
  const ColumnLayout layout = optimal_column_layout(rel);
  const auto ncols = static_cast<int>(layout.columns.size());

  // Integer column widths proportional to column areas, exact sum n.
  std::vector<std::int64_t> col_area(static_cast<std::size_t>(ncols), 0);
  for (int c = 0; c < ncols; ++c) {
    for (int idx : layout.columns[static_cast<std::size_t>(c)]) {
      col_area[static_cast<std::size_t>(c)] +=
          areas[static_cast<std::size_t>(idx)];
    }
  }
  std::vector<std::int64_t> width(static_cast<std::size_t>(ncols), 0);
  std::int64_t used = 0;
  for (int c = 0; c < ncols; ++c) {
    width[static_cast<std::size_t>(c)] = std::max<std::int64_t>(
        1, std::llround(static_cast<double>(col_area[static_cast<std::size_t>(
                            c)]) /
                        static_cast<double>(total) * static_cast<double>(n)));
    used += width[static_cast<std::size_t>(c)];
  }
  width[static_cast<std::size_t>(ncols - 1)] += n - used;
  if (width[static_cast<std::size_t>(ncols - 1)] < 1) {
    throw std::invalid_argument("column_based_partition: n too small");
  }

  // Each column has its own rectangle heights; a single PartitionSpec grid
  // needs global row cuts, so take the union of every column's boundaries
  // (a foreign cut merely subdivides a rectangle without changing owners).
  std::vector<std::vector<std::int64_t>> col_heights(
      static_cast<std::size_t>(ncols));
  for (int c = 0; c < ncols; ++c) {
    const auto& members = layout.columns[static_cast<std::size_t>(c)];
    std::int64_t remaining = n;
    for (std::size_t k = 0; k < members.size(); ++k) {
      std::int64_t h;
      if (k + 1 == members.size()) {
        h = remaining;
      } else {
        h = std::llround(
            static_cast<double>(areas[static_cast<std::size_t>(members[k])]) /
            static_cast<double>(col_area[static_cast<std::size_t>(c)]) *
            static_cast<double>(n));
        h = std::clamp<std::int64_t>(h, 0, remaining);
      }
      col_heights[static_cast<std::size_t>(c)].push_back(h);
      remaining -= h;
    }
  }

  // Global row cuts.
  std::vector<std::int64_t> row_cuts = {0, n};
  for (int c = 0; c < ncols; ++c) {
    std::int64_t y = 0;
    for (std::int64_t h : col_heights[static_cast<std::size_t>(c)]) {
      y += h;
      row_cuts.push_back(y);
    }
  }
  std::sort(row_cuts.begin(), row_cuts.end());
  row_cuts.erase(std::unique(row_cuts.begin(), row_cuts.end()),
                 row_cuts.end());

  PartitionSpec spec;
  spec.n = n;
  spec.subplda = static_cast<int>(row_cuts.size()) - 1;
  spec.subpldb = ncols;
  spec.subph.resize(static_cast<std::size_t>(spec.subplda));
  for (int i = 0; i < spec.subplda; ++i) {
    spec.subph[static_cast<std::size_t>(i)] =
        row_cuts[static_cast<std::size_t>(i) + 1] -
        row_cuts[static_cast<std::size_t>(i)];
  }
  spec.subpw = width;
  spec.subp.assign(
      static_cast<std::size_t>(spec.subplda) * static_cast<std::size_t>(ncols),
      0);
  for (int c = 0; c < ncols; ++c) {
    const auto& members = layout.columns[static_cast<std::size_t>(c)];
    std::size_t seg = 0;
    std::int64_t seg_end = col_heights[static_cast<std::size_t>(c)].empty()
                               ? n
                               : col_heights[static_cast<std::size_t>(c)][0];
    std::int64_t y = 0;
    for (int i = 0; i < spec.subplda; ++i) {
      // Advance to the rectangle containing row band [y, y+h).
      while (y >= seg_end && seg + 1 < members.size()) {
        ++seg;
        seg_end += col_heights[static_cast<std::size_t>(c)][seg];
      }
      spec.subp[static_cast<std::size_t>(i) * static_cast<std::size_t>(ncols) +
                static_cast<std::size_t>(c)] =
          members[std::min(seg, members.size() - 1)];
      y += spec.subph[static_cast<std::size_t>(i)];
    }
  }
  spec.validate(static_cast<int>(areas.size()));
  return spec;
}

}  // namespace summagen::partition

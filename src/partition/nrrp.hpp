// NRRP-style non-rectangular recursive partitioning for arbitrary p.
//
// The paper's reference [11] (Beaumont, Eyraud-Dubois, Lambert, IPDPS 2016)
// combines Nagamochi-Abe recursive rectangle dissection with the
// square-corner idea to reach a 2/sqrt(3) approximation of the optimal
// communication volume for any number of processors. The paper's own
// experimental scope stops at three processors; this module implements the
// recursive scheme so SummaGen runs beyond that — the "large clusters"
// future work of its conclusion.
//
// Algorithm (our rendition of the NRRP structure):
//  * recursively dissect an integer rectangle among a set of areas,
//    splitting the area-sorted set into two balanced groups and cutting
//    perpendicular to the longer side;
//  * at two-processor leaves, choose between a guillotine cut and a
//    *corner* (non-rectangular) layout by realized half-perimeter — the
//    corner wins exactly when 2*sqrt(a_small) < min(h, w), the Becker
//    3:1-ratio criterion generalised to rectangles;
//  * all cuts are integer with exact-area re-apportionment, so the emitted
//    PartitionSpec covers the matrix exactly.
//
// The result's quality is measured against the universal lower bound
// sum_i 2*sqrt(a_i) on the total half-perimeter.
#pragma once

#include <cstdint>
#include <vector>

#include "src/partition/spec.hpp"

namespace summagen::partition {

struct NrrpOptions {
  /// Allow non-rectangular (corner) leaves; false degrades to a pure
  /// recursive rectangular dissection (the Nagamochi-Abe baseline).
  bool allow_non_rectangular = true;
};

/// Partitions the n x n matrix into zones of the given areas (summing to
/// n*n, every area >= 0) using the recursive scheme above. Supports any
/// p >= 1. Throws std::invalid_argument on bad input.
PartitionSpec nrrp_partition(std::int64_t n,
                             const std::vector<std::int64_t>& areas,
                             const NrrpOptions& opts = {});

/// Two-level partitioning for clusters: first dissect the matrix among
/// processor *groups* (nodes) with rectangular cuts — every node gets one
/// rectangle, so inter-node traffic stays minimal and node-local — then
/// run the full recursive scheme (corner leaves allowed) inside each node's
/// rectangle among its own processors.
///
/// `areas_by_group[g][i]` is the area of group g's i-th processor; global
/// ranks are assigned group-major (group 0's processors first). All areas
/// must sum to n*n.
PartitionSpec nrrp_hierarchical(
    std::int64_t n,
    const std::vector<std::vector<std::int64_t>>& areas_by_group,
    const NrrpOptions& opts = {});

/// Universal lower bound on the sum of zone half-perimeters: each zone of
/// area a has half-perimeter >= 2*sqrt(a).
double half_perimeter_lower_bound(const std::vector<std::int64_t>& areas);

/// Quality of a partition against the lower bound:
/// total_half_perimeter / lower_bound (>= 1; NRRP's theoretical guarantee
/// for the continuous problem is 2/sqrt(3) ~ 1.155).
double nrrp_quality(const PartitionSpec& spec);

}  // namespace summagen::partition

// Beaumont et al. column-based rectangular partitioning (baseline).
//
// The first research thread the paper surveys (Section III-B): partition the
// unit square into p rectangles of prescribed areas, arranged in full-height
// columns, minimising the sum of half-perimeters. Beaumont et al. [2] prove
// the arrangement optimal among column-based layouts when processors are
// sorted by area and columns contain consecutive processors; we find that
// optimum exactly by dynamic programming over the sorted areas.
//
// Used as the rectangular baseline in ablations and tests; the paper's four
// experimental shapes live in shapes.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "src/partition/spec.hpp"

namespace summagen::partition {

/// Column-based layout: processors grouped into columns.
struct ColumnLayout {
  /// columns[c] lists indices into the sorted-areas array, top to bottom.
  std::vector<std::vector<int>> columns;
  /// Lower bound on the sum of half-perimeters in the continuous (unit
  /// square) relaxation, scaled to the n x n grid.
  double continuous_half_perimeter = 0.0;
};

/// Chooses the optimal column structure for the given relative areas
/// (continuous model). Areas need not be sorted; indices in the result
/// refer to the input order.
ColumnLayout optimal_column_layout(const std::vector<double>& areas);

/// Builds a rectangular PartitionSpec of an n x n matrix from integer areas
/// using the optimal column-based arrangement. Column widths and rectangle
/// heights are rounded to integers with exact-cover fix-ups; every rank's
/// area therefore only approximates its request (as in all integer-grid
/// partitioners).
PartitionSpec column_based_partition(std::int64_t n,
                                     const std::vector<std::int64_t>& areas);

}  // namespace summagen::partition

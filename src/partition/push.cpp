#include "src/partition/push.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "src/partition/shapes.hpp"
#include "src/util/rng.hpp"

namespace summagen::partition {
namespace {

// Balanced split of n elements over g cells: offsets[i] of cell i.
std::vector<std::int64_t> cell_offsets(std::int64_t n, int g) {
  std::vector<std::int64_t> off(static_cast<std::size_t>(g) + 1, 0);
  for (int i = 0; i <= g; ++i) {
    off[static_cast<std::size_t>(i)] =
        n / g * i + std::min<std::int64_t>(i, n % g);
  }
  return off;
}

struct CellRect {
  int r0 = -1, r1 = -1, c0 = -1, c1 = -1;  // inclusive, -1 = empty
  bool empty() const { return r0 < 0; }
  bool contains(int i, int j) const {
    return !empty() && i >= r0 && i <= r1 && j >= c0 && j <= c1;
  }
  // Chebyshev distance from a cell to the rectangle (0 if inside).
  int distance(int i, int j) const {
    if (empty()) return 0;
    const int di = i < r0 ? r0 - i : (i > r1 ? i - r1 : 0);
    const int dj = j < c0 ? c0 - j : (j > c1 ? j - c1 : 0);
    return std::max(di, dj);
  }
};

enum class Side { kTop, kBottom, kLeft, kRight };
constexpr Side kSides[] = {Side::kTop, Side::kBottom, Side::kLeft,
                           Side::kRight};

/// Cell-grid ownership with incremental covering bookkeeping.
class PushState {
 public:
  PushState(std::int64_t n, int g, std::vector<int> owner, int nprocs)
      : g_(g), owner_(std::move(owner)), off_(cell_offsets(n, g)) {
    row_count_.assign(static_cast<std::size_t>(nprocs),
                      std::vector<int>(static_cast<std::size_t>(g), 0));
    col_count_ = row_count_;
    for (int i = 0; i < g; ++i) {
      for (int j = 0; j < g; ++j) {
        const auto p = static_cast<std::size_t>(at(i, j));
        ++row_count_[p][static_cast<std::size_t>(i)];
        ++col_count_[p][static_cast<std::size_t>(j)];
      }
    }
  }

  int nprocs() const { return static_cast<int>(row_count_.size()); }

  int at(int i, int j) const {
    return owner_[static_cast<std::size_t>(i) * static_cast<std::size_t>(g_) +
                  static_cast<std::size_t>(j)];
  }

  CellRect covering(int proc) const {
    const auto p = static_cast<std::size_t>(proc);
    CellRect r;
    for (int i = 0; i < g_; ++i) {
      if (row_count_[p][static_cast<std::size_t>(i)] > 0) {
        if (r.r0 < 0) r.r0 = i;
        r.r1 = i;
      }
    }
    for (int j = 0; j < g_; ++j) {
      if (col_count_[p][static_cast<std::size_t>(j)] > 0) {
        if (r.c0 < 0) r.c0 = j;
        r.c1 = j;
      }
    }
    return r;
  }

  /// Covering half-perimeter of one processor, in matrix elements.
  std::int64_t hp(int proc) const {
    const CellRect r = covering(proc);
    if (r.empty()) return 0;
    return (off_[static_cast<std::size_t>(r.r1) + 1] -
            off_[static_cast<std::size_t>(r.r0)]) +
           (off_[static_cast<std::size_t>(r.c1) + 1] -
            off_[static_cast<std::size_t>(r.c0)]);
  }

  std::int64_t total_hp() const {
    std::int64_t total = 0;
    for (int p = 0; p < nprocs(); ++p) total += hp(p);
    return total;
  }

  void set_owner(int i, int j, int proc) {
    const auto old = static_cast<std::size_t>(at(i, j));
    const auto now = static_cast<std::size_t>(proc);
    if (old == now) return;
    --row_count_[old][static_cast<std::size_t>(i)];
    --col_count_[old][static_cast<std::size_t>(j)];
    ++row_count_[now][static_cast<std::size_t>(i)];
    ++col_count_[now][static_cast<std::size_t>(j)];
    owner_[static_cast<std::size_t>(i) * static_cast<std::size_t>(g_) +
           static_cast<std::size_t>(j)] = proc;
  }

  /// p's cells on one side of its covering rectangle.
  std::vector<std::pair<int, int>> side_cells(int proc, Side side) const {
    const CellRect r = covering(proc);
    std::vector<std::pair<int, int>> out;
    if (r.empty()) return out;
    auto collect_row = [&](int i) {
      for (int j = r.c0; j <= r.c1; ++j) {
        if (at(i, j) == proc) out.emplace_back(i, j);
      }
    };
    auto collect_col = [&](int j) {
      for (int i = r.r0; i <= r.r1; ++i) {
        if (at(i, j) == proc) out.emplace_back(i, j);
      }
    };
    switch (side) {
      case Side::kTop:
        collect_row(r.r0);
        break;
      case Side::kBottom:
        collect_row(r.r1);
        break;
      case Side::kLeft:
        collect_col(r.c0);
        break;
      case Side::kRight:
        collect_col(r.c1);
        break;
    }
    return out;
  }

  const std::vector<int>& owners() const { return owner_; }
  std::vector<int>& owners() { return owner_; }

 private:
  int g_;
  std::vector<int> owner_;
  std::vector<std::int64_t> off_;
  std::vector<std::vector<int>> row_count_;
  std::vector<std::vector<int>> col_count_;
};

constexpr std::int64_t kInfeasible = std::numeric_limits<std::int64_t>::min();

/// One push move: processor p vacates one side line of its covering,
/// receiving an equal number of q's cells chosen to keep p compact
/// (donors ranked by distance to p's post-shrink covering). Returns the
/// half-perimeter gain, or kInfeasible if the move is impossible;
/// `apply` leaves the move in place, otherwise the state is restored.
std::int64_t try_line_push(PushState& state, int p, Side side, int q,
                           bool apply) {
  const auto line = state.side_cells(p, side);
  if (line.empty()) return kInfeasible;

  // Post-shrink covering estimate: the covering without the vacated line.
  CellRect target = state.covering(p);
  switch (side) {
    case Side::kTop:
      ++target.r0;
      break;
    case Side::kBottom:
      --target.r1;
      break;
    case Side::kLeft:
      ++target.c0;
      break;
    case Side::kRight:
      --target.c1;
      break;
  }
  if (target.r0 > target.r1 || target.c0 > target.c1) return kInfeasible;

  // Donor cells of q, nearest to the post-shrink covering first.
  std::vector<std::pair<int, int>> donors;
  {
    const CellRect qr = state.covering(q);
    if (qr.empty()) return kInfeasible;
    for (int i = qr.r0; i <= qr.r1; ++i) {
      for (int j = qr.c0; j <= qr.c1; ++j) {
        if (state.at(i, j) == q) donors.emplace_back(i, j);
      }
    }
  }
  if (donors.size() < line.size()) return kInfeasible;
  std::stable_sort(donors.begin(), donors.end(),
                   [&](const auto& a, const auto& b) {
                     return target.distance(a.first, a.second) <
                            target.distance(b.first, b.second);
                   });
  donors.resize(line.size());

  const std::int64_t before = state.hp(p) + state.hp(q);
  for (const auto& [i, j] : line) state.set_owner(i, j, q);
  for (const auto& [i, j] : donors) state.set_owner(i, j, p);
  const std::int64_t gain = before - (state.hp(p) + state.hp(q));
  if (!apply) {
    for (const auto& [i, j] : donors) state.set_owner(i, j, q);
    for (const auto& [i, j] : line) state.set_owner(i, j, p);
  }
  return gain;
}

}  // namespace

PushResult push_optimize(std::int64_t n,
                         const std::vector<std::int64_t>& areas,
                         const PushOptions& opts) {
  if (n <= 0) throw std::invalid_argument("push_optimize: n <= 0");
  if (areas.empty()) throw std::invalid_argument("push_optimize: no areas");
  if (opts.grid < 2 || opts.grid > n) {
    throw std::invalid_argument("push_optimize: grid must be in [2, n]");
  }
  const int g = opts.grid;
  const auto p = static_cast<int>(areas.size());
  std::int64_t total = 0;
  for (std::int64_t a : areas) {
    if (a < 0) throw std::invalid_argument("push_optimize: negative area");
    total += a;
  }
  if (total != n * n) {
    throw std::invalid_argument("push_optimize: areas must sum to n*n");
  }
  const std::int64_t cells = static_cast<std::int64_t>(g) * g;
  if (p > cells) {
    throw std::invalid_argument("push_optimize: more processors than cells");
  }

  // Quantise areas to cell counts (largest remainder).
  std::vector<std::int64_t> cell_count(static_cast<std::size_t>(p), 0);
  {
    std::vector<std::pair<double, std::size_t>> rem(
        static_cast<std::size_t>(p));
    std::int64_t assigned = 0;
    for (std::size_t i = 0; i < static_cast<std::size_t>(p); ++i) {
      const double exact = static_cast<double>(areas[i]) /
                           static_cast<double>(total) *
                           static_cast<double>(cells);
      cell_count[i] = static_cast<std::int64_t>(exact);
      rem[i] = {exact - static_cast<double>(cell_count[i]), i};
      assigned += cell_count[i];
    }
    std::sort(rem.begin(), rem.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (std::size_t i = 0; assigned < cells; ++i, ++assigned) {
      ++cell_count[rem[i % rem.size()].second];
    }
  }

  // 1D starting layout: column-major runs, widest first.
  std::vector<int> owner(static_cast<std::size_t>(cells), 0);
  {
    const auto order = ranks_by_area(areas);
    std::size_t next = 0;
    for (int rank : order) {
      for (std::int64_t c = 0;
           c < cell_count[static_cast<std::size_t>(rank)]; ++c, ++next) {
        const auto col = static_cast<int>(next) / g;
        const auto row = static_cast<int>(next) % g;
        owner[static_cast<std::size_t>(row) * static_cast<std::size_t>(g) +
              static_cast<std::size_t>(col)] = rank;
      }
    }
  }

  const std::vector<int> initial_owner = owner;
  PushResult result;
  result.initial_half_perimeter =
      PushState(n, g, initial_owner, p).total_hp();

  // Annealed descent over line pushes. Pure greedy stalls: reshaping a
  // zone from a slice into a corner square first *expands* the other
  // zone's covering (an energy barrier) before the repeated shrink moves
  // pay it back. A geometric cooling schedule crosses such barriers early
  // and locks in late; several independent restarts guard against bad
  // basins, and the best layout ever seen is what we return.
  struct Move {
    int p, q;
    Side side;
  };
  std::vector<Move> moves;
  for (int a = 0; a < p; ++a) {
    for (int b = 0; b < p; ++b) {
      if (a == b) continue;
      for (Side s : kSides) moves.push_back({a, b, s});
    }
  }

  std::vector<int> best_owner = initial_owner;
  std::int64_t best_hp = result.initial_half_perimeter;

  for (int restart = 0; restart < std::max(1, opts.restarts); ++restart) {
    PushState state(n, g, initial_owner, p);
    util::Rng rng(util::derive_seed(opts.seed,
                                    static_cast<std::uint64_t>(restart)));
    const int iters_per_pass = 16 * static_cast<int>(moves.size());
    double temperature = static_cast<double>(n) / 2.0;
    const double cooling = 0.92;
    for (int pass = 0; pass < opts.max_passes; ++pass) {
      ++result.passes;
      bool advanced = false;
      for (int it = 0; it < iters_per_pass; ++it) {
        const Move& m = moves[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(moves.size()) - 1))];
        const std::int64_t gain =
            try_line_push(state, m.p, m.side, m.q, /*apply=*/false);
        if (gain == kInfeasible) continue;
        const bool accept =
            gain > 0 ||
            (temperature > 1e-9 &&
             rng.uniform(0.0, 1.0) <
                 std::exp(static_cast<double>(gain) / temperature));
        if (!accept) continue;
        try_line_push(state, m.p, m.side, m.q, /*apply=*/true);
        ++result.swaps;
        advanced = true;
        const std::int64_t now = state.total_hp();
        if (now < best_hp) {
          best_hp = now;
          best_owner = state.owners();
        }
      }
      temperature *= cooling;
      if (!advanced && temperature < 1.0) break;
    }
  }

  // Assemble the PartitionSpec from the best cell grid seen.
  const auto off = cell_offsets(n, g);
  PartitionSpec spec;
  spec.n = n;
  spec.subplda = g;
  spec.subpldb = g;
  for (int i = 0; i < g; ++i) {
    spec.subph.push_back(off[static_cast<std::size_t>(i) + 1] -
                         off[static_cast<std::size_t>(i)]);
  }
  spec.subpw = spec.subph;
  spec.subp = best_owner;
  spec.validate(p);
  result.spec = std::move(spec);
  result.final_half_perimeter = result.spec.total_half_perimeter();
  return result;
}

}  // namespace summagen::partition

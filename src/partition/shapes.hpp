// The four partition shapes studied by the paper (Section V, Figure 1),
// proven optimal for three processors with constant speeds by DeFlumere et
// al.'s Push Technique:
//
//   a) Square corner      - two opposite corner squares, one non-rectangular
//                           zone (the shape of Becker et al. generalised);
//   b) Square rectangle   - a full-height rectangle, a square beside it, the
//                           rest non-rectangular;
//   c) Block 2D rectangular - a full-width rectangle on top, the bottom
//                           strip split in two; all zones rectangular;
//   d) Traditional 1D rectangular - vertical slices.
//
// Each builder takes the matrix size and the per-rank areas produced by a
// workload partitioner (Step 1 of Section V: CPM-proportional or FPM
// load-imbalancing) and emits the {subp, subph, subpw} arrays. The paper
// constructs those arrays manually; automating the construction is one of
// the gaps this library fills.
//
// Integer rounding means achieved zone areas only approximate the requested
// ones; `build_shape` guarantees exact cover of the n x n matrix and
// assigns the approximation error to the most capable (largest-area) rank.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/partition/spec.hpp"

namespace summagen::partition {

enum class Shape {
  kSquareCorner,
  kSquareRectangle,
  kBlockRectangle,
  kOneDimensional,
  /// Extension: the "L rectangular" candidate from DeFlumere et al.'s
  /// six potentially optimal three-processor shapes [9, 10] — the largest
  /// zone is an L wrapping a right-edge block that the other two split
  /// horizontally. Not part of the paper's four-shape evaluation.
  kLRectangle,
  /// Extension: layer-based rectangular partitioning (the Liu/Shi/Zhang/
  /// Robertazzi line) — full-width horizontal layers split vertically,
  /// the transpose of the Beaumont column-based optimum. Any p >= 1; also
  /// one of the candidate layouts of drift-triggered re-partitioning.
  kLayered,
};

/// The paper's four evaluated shapes, in its presentation order.
const std::vector<Shape>& all_shapes();

/// The four paper shapes plus the extension shapes (kLRectangle).
const std::vector<Shape>& extended_shapes();

const char* shape_name(Shape shape);

/// Builds the PartitionSpec of `shape` for an n x n matrix where rank i
/// requests `areas[i]` elements (areas must sum to n*n).
///
/// Supported processor counts: square corner 2 or 3; square rectangle and
/// block rectangle exactly 3; 1D rectangular any p >= 1. Dimensions are
/// rounded to multiples of `granularity` (the paper's block size r) when
/// it divides n; pass 1 for element granularity.
PartitionSpec build_shape(Shape shape, std::int64_t n,
                          const std::vector<std::int64_t>& areas,
                          std::int64_t granularity = 1);

/// Ranks ordered by area descending (stable); helper shared by builders
/// and tests. order[0] is the rank with the largest area.
std::vector<int> ranks_by_area(const std::vector<std::int64_t>& areas);

}  // namespace summagen::partition

#include "src/partition/nrrp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace summagen::partition {
namespace {

struct Cell {
  int owner;
  std::int64_t r0, c0, h, w;
};

struct Item {
  std::int64_t area;
  int owner;
};

// Proportionally rescales the items' areas to sum exactly to `new_total`
// (largest-remainder apportionment); keeps descending order.
void rescale_exact(std::vector<Item>& items, std::int64_t new_total) {
  std::int64_t old_total = 0;
  for (const Item& it : items) old_total += it.area;
  if (old_total == new_total) return;
  std::vector<double> exact(items.size());
  std::vector<std::pair<double, std::size_t>> rem(items.size());
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    exact[i] = static_cast<double>(items[i].area) /
               static_cast<double>(old_total) *
               static_cast<double>(new_total);
    items[i].area = static_cast<std::int64_t>(std::floor(exact[i]));
    rem[i] = {exact[i] - std::floor(exact[i]), i};
    assigned += items[i].area;
  }
  std::sort(rem.begin(), rem.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; assigned < new_total; ++i, ++assigned) {
    ++items[rem[i % items.size()].second].area;
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.area > b.area; });
}

void dissect(std::int64_t r0, std::int64_t c0, std::int64_t h,
             std::int64_t w, std::vector<Item> items,
             const NrrpOptions& opts, std::vector<Cell>& out) {
  if (items.empty() || h <= 0 || w <= 0) return;
  if (items.size() == 1) {
    out.push_back({items[0].owner, r0, c0, h, w});
    return;
  }

  // Two-processor leaf: consider the non-rectangular corner layout. The
  // small zone becomes an s x s square in a corner; the large zone the
  // remaining L. Corner beats the best guillotine cut iff
  //   2*s < min(h, w)   (half-perimeters (h+w)+2s vs (h+w)+min(h,w)),
  // the Becker 3:1 criterion.
  if (items.size() == 2 && opts.allow_non_rectangular) {
    const Item small = items[1];
    const std::int64_t min_side = std::min(h, w);
    std::int64_t s = std::llround(std::sqrt(static_cast<double>(small.area)));
    s = std::clamp<std::int64_t>(s, 1, min_side - 1);
    if (min_side >= 2 && 2 * s < min_side && small.area > 0) {
      out.push_back({small.owner, r0, c0, s, s});
      out.push_back({items[0].owner, r0, c0 + s, s, w - s});
      out.push_back({items[0].owner, r0 + s, c0, h - s, w});
      return;
    }
  }

  // Generic step: split the (descending) areas into a prefix/suffix with
  // group shares closest to one half, cut perpendicular to the longer side.
  const std::int64_t total = h * w;
  std::int64_t best_k = 1;
  double best_dev = 2.0;
  std::int64_t prefix = 0;
  for (std::size_t k = 1; k < items.size(); ++k) {
    prefix += items[k - 1].area;
    const double dev = std::abs(static_cast<double>(prefix) /
                                    static_cast<double>(total) -
                                0.5);
    if (dev < best_dev) {
      best_dev = dev;
      best_k = static_cast<std::int64_t>(k);
    }
  }
  std::vector<Item> first(items.begin(), items.begin() + best_k);
  std::vector<Item> second(items.begin() + best_k, items.end());
  std::int64_t first_area = 0;
  for (const Item& it : first) first_area += it.area;
  const double share =
      static_cast<double>(first_area) / static_cast<double>(total);

  if (w >= h) {
    std::int64_t cut = std::llround(share * static_cast<double>(w));
    cut = std::clamp<std::int64_t>(cut, 1, w - 1);
    rescale_exact(first, h * cut);
    rescale_exact(second, h * (w - cut));
    dissect(r0, c0, h, cut, std::move(first), opts, out);
    dissect(r0, c0 + cut, h, w - cut, std::move(second), opts, out);
  } else {
    std::int64_t cut = std::llround(share * static_cast<double>(h));
    cut = std::clamp<std::int64_t>(cut, 1, h - 1);
    rescale_exact(first, cut * w);
    rescale_exact(second, (h - cut) * w);
    dissect(r0, c0, cut, w, std::move(first), opts, out);
    dissect(r0 + cut, c0, h - cut, w, std::move(second), opts, out);
  }
}

PartitionSpec assemble(std::int64_t n, const std::vector<Cell>& cells) {
  std::vector<std::int64_t> row_cuts = {0, n};
  std::vector<std::int64_t> col_cuts = {0, n};
  for (const Cell& cell : cells) {
    row_cuts.push_back(cell.r0);
    row_cuts.push_back(cell.r0 + cell.h);
    col_cuts.push_back(cell.c0);
    col_cuts.push_back(cell.c0 + cell.w);
  }
  std::sort(row_cuts.begin(), row_cuts.end());
  row_cuts.erase(std::unique(row_cuts.begin(), row_cuts.end()),
                 row_cuts.end());
  std::sort(col_cuts.begin(), col_cuts.end());
  col_cuts.erase(std::unique(col_cuts.begin(), col_cuts.end()),
                 col_cuts.end());

  PartitionSpec spec;
  spec.n = n;
  spec.subplda = static_cast<int>(row_cuts.size()) - 1;
  spec.subpldb = static_cast<int>(col_cuts.size()) - 1;
  for (int i = 0; i < spec.subplda; ++i) {
    spec.subph.push_back(row_cuts[static_cast<std::size_t>(i) + 1] -
                         row_cuts[static_cast<std::size_t>(i)]);
  }
  for (int j = 0; j < spec.subpldb; ++j) {
    spec.subpw.push_back(col_cuts[static_cast<std::size_t>(j) + 1] -
                         col_cuts[static_cast<std::size_t>(j)]);
  }
  spec.subp.assign(static_cast<std::size_t>(spec.subplda) *
                       static_cast<std::size_t>(spec.subpldb),
                   0);
  // The cells tile the square exactly, so every grid band lies in exactly
  // one cell; locate by band midpoint.
  for (int i = 0; i < spec.subplda; ++i) {
    for (int j = 0; j < spec.subpldb; ++j) {
      const std::int64_t rm = row_cuts[static_cast<std::size_t>(i)];
      const std::int64_t cm = col_cuts[static_cast<std::size_t>(j)];
      for (const Cell& cell : cells) {
        if (rm >= cell.r0 && rm < cell.r0 + cell.h && cm >= cell.c0 &&
            cm < cell.c0 + cell.w) {
          spec.subp[static_cast<std::size_t>(i) *
                        static_cast<std::size_t>(spec.subpldb) +
                    static_cast<std::size_t>(j)] = cell.owner;
          break;
        }
      }
    }
  }
  return spec;
}

}  // namespace

PartitionSpec nrrp_partition(std::int64_t n,
                             const std::vector<std::int64_t>& areas,
                             const NrrpOptions& opts) {
  if (n <= 0) throw std::invalid_argument("nrrp_partition: n <= 0");
  if (areas.empty()) throw std::invalid_argument("nrrp_partition: no areas");
  std::int64_t total = 0;
  std::vector<Item> items;
  for (std::size_t i = 0; i < areas.size(); ++i) {
    if (areas[i] < 0) {
      throw std::invalid_argument("nrrp_partition: negative area");
    }
    total += areas[i];
    if (areas[i] > 0) {
      items.push_back({areas[i], static_cast<int>(i)});
    }
  }
  if (total != n * n) {
    throw std::invalid_argument("nrrp_partition: areas must sum to n*n");
  }
  if (items.empty()) {
    throw std::invalid_argument("nrrp_partition: all areas are zero");
  }
  if (static_cast<std::int64_t>(items.size()) > n) {
    throw std::invalid_argument(
        "nrrp_partition: more non-empty processors than matrix rows");
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.area > b.area; });

  std::vector<Cell> cells;
  dissect(0, 0, n, n, std::move(items), opts, cells);
  PartitionSpec spec = assemble(n, cells);
  spec.validate(static_cast<int>(areas.size()));
  return spec;
}

PartitionSpec nrrp_hierarchical(
    std::int64_t n,
    const std::vector<std::vector<std::int64_t>>& areas_by_group,
    const NrrpOptions& opts) {
  if (n <= 0) throw std::invalid_argument("nrrp_hierarchical: n <= 0");
  if (areas_by_group.empty()) {
    throw std::invalid_argument("nrrp_hierarchical: no groups");
  }
  // Group totals; group ids double as level-1 owners.
  std::vector<Item> groups;
  std::int64_t total = 0;
  for (std::size_t g = 0; g < areas_by_group.size(); ++g) {
    if (areas_by_group[g].empty()) {
      throw std::invalid_argument("nrrp_hierarchical: empty group");
    }
    std::int64_t sum = 0;
    for (std::int64_t a : areas_by_group[g]) {
      if (a < 0) {
        throw std::invalid_argument("nrrp_hierarchical: negative area");
      }
      sum += a;
    }
    total += sum;
    if (sum > 0) groups.push_back({sum, static_cast<int>(g)});
  }
  if (total != n * n) {
    throw std::invalid_argument("nrrp_hierarchical: areas must sum to n*n");
  }
  if (groups.empty()) {
    throw std::invalid_argument("nrrp_hierarchical: all areas zero");
  }
  std::sort(groups.begin(), groups.end(),
            [](const Item& a, const Item& b) { return a.area > b.area; });

  // Level 1: rectangular cuts only, so each node owns one rectangle and
  // all cross-node data dependencies stay between whole node blocks.
  NrrpOptions rect_only = opts;
  rect_only.allow_non_rectangular = false;
  std::vector<Cell> node_cells;
  dissect(0, 0, n, n, groups, rect_only, node_cells);

  // First global rank of each group (group-major rank layout).
  std::vector<int> rank_base(areas_by_group.size() + 1, 0);
  for (std::size_t g = 0; g < areas_by_group.size(); ++g) {
    rank_base[g + 1] =
        rank_base[g] + static_cast<int>(areas_by_group[g].size());
  }

  // Level 2: full scheme (corner leaves allowed) inside each node block.
  std::vector<Cell> cells;
  for (const Cell& node_cell : node_cells) {
    const auto g = static_cast<std::size_t>(node_cell.owner);
    std::vector<Item> items;
    for (std::size_t i = 0; i < areas_by_group[g].size(); ++i) {
      if (areas_by_group[g][i] > 0) {
        items.push_back({areas_by_group[g][i],
                         rank_base[g] + static_cast<int>(i)});
      }
    }
    std::sort(items.begin(), items.end(),
              [](const Item& a, const Item& b) { return a.area > b.area; });
    rescale_exact(items, node_cell.h * node_cell.w);
    dissect(node_cell.r0, node_cell.c0, node_cell.h, node_cell.w,
            std::move(items), opts, cells);
  }

  PartitionSpec spec = assemble(n, cells);
  spec.validate(rank_base.back());
  return spec;
}

double half_perimeter_lower_bound(const std::vector<std::int64_t>& areas) {
  double lb = 0.0;
  for (std::int64_t a : areas) {
    if (a < 0) {
      throw std::invalid_argument("half_perimeter_lower_bound: a < 0");
    }
    lb += 2.0 * std::sqrt(static_cast<double>(a));
  }
  return lb;
}

double nrrp_quality(const PartitionSpec& spec) {
  std::vector<std::int64_t> areas;
  for (int r = 0; r < spec.nprocs(); ++r) areas.push_back(spec.area_of(r));
  const double lb = half_perimeter_lower_bound(areas);
  if (lb == 0.0) return 1.0;
  return static_cast<double>(spec.total_half_perimeter()) / lb;
}

}  // namespace summagen::partition

// PartitionSpec: the paper's {subplda, subpldb, subp, subph, subpw} arrays.
//
// SummaGen (Section IV) describes the layout of partitions in the square
// matrices by a grid of *sub-partitions*: `subph` are the heights of the
// sub-partition rows, `subpw` the widths of the sub-partition columns, and
// `subp[bi * subpldb + bj]` the rank owning sub-partition (bi, bj). A
// processor's *partition* (its zone Z) is the union of the sub-partitions it
// owns — possibly non-rectangular, as in the square-corner shape.
//
// This header adds the geometry the theory chapters need: zone areas A(Z),
// covering rectangles R(Z), and half-perimeters c(Z) = h(Z) + w(Z), whose
// sum is the paper's communication-volume objective (Section II).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace summagen::partition {

/// Axis-aligned rectangle in matrix coordinates (elements).
struct Rect {
  std::int64_t row0 = 0;
  std::int64_t col0 = 0;
  std::int64_t rows = 0;
  std::int64_t cols = 0;

  bool operator==(const Rect&) const = default;
};

/// The partition layout of the three matrices (A, B and C share it).
struct PartitionSpec {
  std::int64_t n = 0;  ///< matrix dimension N (elements)
  int subplda = 0;     ///< number of sub-partition rows
  int subpldb = 0;     ///< number of sub-partition columns
  std::vector<int> subp;            ///< owners, row-major, subplda*subpldb
  std::vector<std::int64_t> subph;  ///< row heights, sum == n (may be 0)
  std::vector<std::int64_t> subpw;  ///< column widths, sum == n (may be 0)

  /// Owner rank of sub-partition (bi, bj).
  int owner(int bi, int bj) const {
    return subp[static_cast<std::size_t>(bi) *
                    static_cast<std::size_t>(subpldb) +
                static_cast<std::size_t>(bj)];
  }

  /// 1 + the largest rank referenced.
  int nprocs() const;

  /// Throws std::invalid_argument describing the first violated invariant:
  /// array sizes, non-negative extents, extents summing to n, owners in
  /// [0, nprocs). `expected_procs < 0` skips the owner-range check.
  void validate(int expected_procs = -1) const;

  /// Element offset of sub-partition row bi / column bj.
  std::vector<std::int64_t> row_offsets() const;  ///< size subplda + 1
  std::vector<std::int64_t> col_offsets() const;  ///< size subpldb + 1

  /// Whether `rank` owns at least one sub-partition in row bi / column bj
  /// (the `row_contains_rank` / `column_contains_rank` of Figures 2-3).
  bool row_contains(int rank, int bi) const;
  bool col_contains(int rank, int bj) const;

  /// Distinct owners appearing in a sub-partition row/column, ascending.
  std::vector<int> ranks_in_row(int bi) const;
  std::vector<int> ranks_in_col(int bj) const;

  /// First sub-partition row containing `rank` and the count of rows from
  /// there to the last containing row (the paper's `myi` / `block_lda`).
  /// Returns {0, 0} for a rank owning nothing.
  std::pair<int, int> row_span(int rank) const;
  std::pair<int, int> col_span(int rank) const;

  /// Zone area A(Z_rank) in elements.
  std::int64_t area_of(int rank) const;

  /// Covering rectangle R(Z_rank); all-zero Rect for an empty zone.
  Rect covering(int rank) const;

  /// Half-perimeter c(Z_rank) = h(Z) + w(Z); 0 for an empty zone.
  std::int64_t half_perimeter(int rank) const;

  /// Sum of half-perimeters over all ranks — the paper's T_comm objective
  /// (total communication volume, Section II, Eq. 2/4).
  std::int64_t total_half_perimeter() const;

  /// True if Z_rank exactly fills its covering rectangle.
  bool is_rectangular(int rank) const;

  /// ASCII rendering with one character per `cell` x `cell` elements — the
  /// pictures of Figure 1 (digits = owner ranks).
  std::string render(std::int64_t cell = 1) const;
};

}  // namespace summagen::partition

// The Push Technique of DeFlumere & Lastovetsky (the paper's refs [9, 10])
// as an executable optimizer.
//
// Their proofs of shape optimality work by *pushing* matrix elements
// between processors: starting from any partition whose per-processor
// areas realise the load balance, elements are moved so the total
// communication volume — the sum of covering-rectangle half-perimeters —
// strictly decreases, until no improving move exists. The shapes the
// descent converges to are the candidates for optimality (square corner,
// straight line, ... depending on the speed ratios).
//
// This module implements the descent on a coarse cell grid: areas are
// quantised to g x g cells, moves are area-preserving swaps of two cells
// owned by different processors, and a swap is accepted iff it lowers the
// half-perimeter sum. Deterministic given the seed.
//
// It is a *search* companion to the closed-form builders in shapes.hpp:
// tests verify that for two processors the descent rediscovers the
// square-corner shape beyond the 3:1 speed ratio and the straight line
// below it — the Becker/DeFlumere results the paper builds on.
#pragma once

#include <cstdint>
#include <vector>

#include "src/partition/spec.hpp"

namespace summagen::partition {

struct PushOptions {
  int grid = 32;        ///< cell grid resolution (g x g cells)
  int max_passes = 64;  ///< annealing passes (one temperature step each)
  int restarts = 4;     ///< independent annealing runs; best kept
  std::uint64_t seed = 1;  ///< base seed (each restart derives its own)
};

struct PushResult {
  PartitionSpec spec;  ///< assembled from the final cell grid
  std::int64_t initial_half_perimeter = 0;  ///< of the 1D starting layout
  std::int64_t final_half_perimeter = 0;
  int swaps = 0;    ///< accepted moves
  int passes = 0;   ///< descent passes executed
};

/// Runs the push descent for an n x n matrix and the given per-processor
/// areas (summing to n*n). Starts from the traditional 1D layout.
/// Throws std::invalid_argument on bad input (including more processors
/// than grid cells).
PushResult push_optimize(std::int64_t n,
                         const std::vector<std::int64_t>& areas,
                         const PushOptions& opts = {});

}  // namespace summagen::partition

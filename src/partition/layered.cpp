#include "src/partition/layered.hpp"

#include "src/partition/column_based.hpp"

namespace summagen::partition {

PartitionSpec transpose_spec(const PartitionSpec& spec) {
  PartitionSpec t;
  t.n = spec.n;
  t.subplda = spec.subpldb;
  t.subpldb = spec.subplda;
  t.subph = spec.subpw;
  t.subpw = spec.subph;
  t.subp.resize(spec.subp.size());
  for (int i = 0; i < t.subplda; ++i) {
    for (int j = 0; j < t.subpldb; ++j) {
      t.subp[static_cast<std::size_t>(i) *
                 static_cast<std::size_t>(t.subpldb) +
             static_cast<std::size_t>(j)] =
          spec.subp[static_cast<std::size_t>(j) *
                        static_cast<std::size_t>(spec.subpldb) +
                    static_cast<std::size_t>(i)];
    }
  }
  return t;
}

PartitionSpec layered_partition(std::int64_t n,
                                const std::vector<std::int64_t>& areas) {
  // The optimal layered arrangement of `areas` is the transpose of the
  // optimal column-based arrangement (the DP cost — sum of half-perimeters
  // — is symmetric under transposition).
  PartitionSpec spec = transpose_spec(column_based_partition(n, areas));
  spec.validate(static_cast<int>(areas.size()));
  return spec;
}

}  // namespace summagen::partition

// Workload partitioners: how many matrix elements each processor gets.
//
// Step 1 of every shape-construction algorithm in the paper's Section V:
//  * constant speeds  -> areas proportional to speed (the classic CPM
//    distribution used by Kalinov-Lastovetsky and Beaumont et al.);
//  * non-constant speeds -> the load-imbalancing data-partitioning algorithm
//    of Khaleghzadeh et al. [17], which minimises the parallel computation
//    time  max_i a_i / s_i(a_i)  over non-smooth functional performance
//    models. Its optima may be deliberately imbalanced: a processor in a
//    performance trough gets less work than proportionality suggests.
#pragma once

#include <cstdint>
#include <vector>

#include "src/device/speed_function.hpp"

namespace summagen::partition {

/// Integer areas proportional to `speeds`, summing exactly to `total`
/// (largest-remainder rounding). Throws on non-positive speeds/total.
std::vector<std::int64_t> partition_areas_cpm(std::int64_t total,
                                              const std::vector<double>& speeds);

/// Options of the FPM load-imbalancing partitioner.
struct FpmOptions {
  /// DP grid step in elements of area; 0 = auto (~total/1024, snapped).
  std::int64_t grid_step = 0;
  /// Local-refinement sweeps after the DP solve.
  int refine_iters = 200;
};

/// Result of the FPM partitioner.
struct FpmResult {
  std::vector<std::int64_t> areas;  ///< sums exactly to n*n
  double tcomp = 0.0;  ///< achieved max_i zone_time(s_i, a_i, n)
};

/// Distributes the n*n elements of the matrices over the processors whose
/// speed functions are given, minimising the parallel computation time
/// max_i zone_time(speed[i], a_i, n) (paper Eq. 3). Dynamic program over an
/// area grid followed by unit-granularity local refinement.
FpmResult partition_areas_fpm(
    std::int64_t n, const std::vector<const device::SpeedFunction*>& speeds,
    const FpmOptions& opts = {});

/// Convenience overload for owning containers.
FpmResult partition_areas_fpm(std::int64_t n,
                              const std::vector<device::SpeedFunction>& speeds,
                              const FpmOptions& opts = {});

/// Parallel computation time of a distribution under the given FPMs
/// (max over processors of zone_time).
double distribution_time(std::int64_t n,
                         const std::vector<const device::SpeedFunction*>& speeds,
                         const std::vector<std::int64_t>& areas);

}  // namespace summagen::partition

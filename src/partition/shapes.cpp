#include "src/partition/shapes.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "src/partition/layered.hpp"

namespace summagen::partition {
namespace {

// Rounds `x` to a multiple of `g` clamped into [lo, hi] (lo/hi are
// themselves multiples of g by construction of the callers).
std::int64_t snap(double x, std::int64_t g, std::int64_t lo, std::int64_t hi) {
  std::int64_t v = std::llround(x / static_cast<double>(g)) * g;
  return std::clamp(v, lo, hi);
}

void check_inputs(std::int64_t n, const std::vector<std::int64_t>& areas,
                  std::int64_t granularity) {
  if (n <= 0) throw std::invalid_argument("build_shape: n <= 0");
  if (granularity < 1 || n % granularity != 0) {
    throw std::invalid_argument(
        "build_shape: granularity must be >= 1 and divide n");
  }
  std::int64_t sum = 0;
  for (std::int64_t a : areas) {
    if (a < 0) throw std::invalid_argument("build_shape: negative area");
    sum += a;
  }
  if (sum != n * n) {
    throw std::invalid_argument("build_shape: areas sum to " +
                                std::to_string(sum) + ", expected n*n = " +
                                std::to_string(n * n));
  }
}

PartitionSpec square_corner3(std::int64_t n,
                             const std::vector<std::int64_t>& areas,
                             std::int64_t g) {
  const auto order = ranks_by_area(areas);
  const int r1 = order[0], r2 = order[1], r3 = order[2];
  // Second-largest area gets the top-left square, smallest the bottom-right
  // square (Figure 1a), the largest the remaining non-rectangular zone.
  //
  // Feasibility: the corner squares must not overlap, i.e. side2 + side3
  // <= n. Near-homogeneous inputs violate that (square corner is a shape
  // for heterogeneous systems); degrade gracefully by shrinking both sides
  // proportionally — the most balanced layout the shape admits.
  double side2 =
      std::sqrt(static_cast<double>(areas[static_cast<std::size_t>(r2)]));
  double side3 =
      std::sqrt(static_cast<double>(areas[static_cast<std::size_t>(r3)]));
  if (side2 + side3 > static_cast<double>(n)) {
    const double scale = static_cast<double>(n) / (side2 + side3);
    side2 *= scale;
    side3 *= scale;
  }
  const std::int64_t n2 = snap(side2, g, g, n - g);
  const std::int64_t n3 = snap(side3, g, 0, n - n2);
  PartitionSpec spec;
  spec.n = n;
  spec.subplda = 3;
  spec.subpldb = 3;
  spec.subph = {n2, n - n2 - n3, n3};
  spec.subpw = {n2, n - n2 - n3, n3};
  spec.subp = {r2, r1, r1, r1, r1, r1, r1, r1, r3};
  return spec;
}

PartitionSpec square_corner2(std::int64_t n,
                             const std::vector<std::int64_t>& areas,
                             std::int64_t g) {
  const auto order = ranks_by_area(areas);
  const int r1 = order[0], r2 = order[1];
  const std::int64_t n2 = snap(
      std::sqrt(static_cast<double>(areas[static_cast<std::size_t>(r2)])), g,
      0, n - g);
  PartitionSpec spec;
  spec.n = n;
  spec.subplda = 2;
  spec.subpldb = 2;
  spec.subph = {n - n2, n2};
  spec.subpw = {n - n2, n2};
  spec.subp = {r1, r1, r1, r2};
  return spec;
}

PartitionSpec square_rectangle(std::int64_t n,
                               const std::vector<std::int64_t>& areas,
                               std::int64_t g) {
  const auto order = ranks_by_area(areas);
  const int r1 = order[0], r2 = order[1], r3 = order[2];
  // Right-most full-height rectangle for the second-largest area
  // (Section V-2 Step 2), a square adjoining it for the smallest
  // (Step 3), the rest to the largest.
  const std::int64_t w1 =
      snap(static_cast<double>(areas[static_cast<std::size_t>(r2)]) /
               static_cast<double>(n),
           g, g, n - 2 * g);
  const std::int64_t n3 = snap(
      std::sqrt(static_cast<double>(areas[static_cast<std::size_t>(r3)])), g,
      0, std::min(n - g, n - w1 - g));
  PartitionSpec spec;
  spec.n = n;
  spec.subplda = 2;
  spec.subpldb = 3;
  spec.subph = {n - n3, n3};
  spec.subpw = {n - w1 - n3, n3, w1};
  spec.subp = {r1, r1, r2, r1, r3, r2};
  return spec;
}

PartitionSpec block_rectangle(std::int64_t n,
                              const std::vector<std::int64_t>& areas,
                              std::int64_t g) {
  const auto order = ranks_by_area(areas);
  const int r1 = order[0], r2 = order[1], r3 = order[2];
  // Full-width top rectangle for the largest area (Section V-3 Step 2);
  // the bottom strip is split between the other two, with the
  // second-largest right-most (Figure 1c).
  const std::int64_t h1 =
      snap(static_cast<double>(areas[static_cast<std::size_t>(r1)]) /
               static_cast<double>(n),
           g, g, n - g);
  const std::int64_t hb = n - h1;
  const std::int64_t w2 =
      snap(static_cast<double>(areas[static_cast<std::size_t>(r2)]) /
               static_cast<double>(hb),
           g, g, n - g);
  PartitionSpec spec;
  spec.n = n;
  spec.subplda = 2;
  spec.subpldb = 2;
  spec.subph = {h1, hb};
  spec.subpw = {n - w2, w2};
  spec.subp = {r1, r1, r3, r2};
  return spec;
}

PartitionSpec l_rectangle(std::int64_t n,
                          const std::vector<std::int64_t>& areas,
                          std::int64_t g) {
  const auto order = ranks_by_area(areas);
  const int r1 = order[0], r2 = order[1], r3 = order[2];
  // The two smaller zones stack inside a square-ish block at the top-right
  // edge; the largest wraps it as an L (left column + bottom strip).
  const double block_area = static_cast<double>(
      areas[static_cast<std::size_t>(r2)] +
      areas[static_cast<std::size_t>(r3)]);
  const std::int64_t wr = snap(std::sqrt(block_area), g, g, n - g);
  const std::int64_t h2 =
      snap(static_cast<double>(areas[static_cast<std::size_t>(r2)]) /
               static_cast<double>(wr),
           g, g, n - g);
  const std::int64_t h3 =
      snap(static_cast<double>(areas[static_cast<std::size_t>(r3)]) /
               static_cast<double>(wr),
           g, 0, n - h2);
  PartitionSpec spec;
  spec.n = n;
  spec.subplda = 3;
  spec.subpldb = 2;
  spec.subph = {h2, h3, n - h2 - h3};
  spec.subpw = {n - wr, wr};
  spec.subp = {r1, r2, r1, r3, r1, r1};
  return spec;
}

PartitionSpec one_dimensional(std::int64_t n,
                              const std::vector<std::int64_t>& areas,
                              std::int64_t g) {
  const auto order = ranks_by_area(areas);
  const auto p = static_cast<int>(areas.size());
  // Vertical slices, widest (fastest processor) leftmost (Figure 1d).
  std::vector<std::int64_t> widths(static_cast<std::size_t>(p), 0);
  std::int64_t used = 0;
  for (int i = 1; i < p; ++i) {
    const int r = order[static_cast<std::size_t>(i)];
    std::int64_t w =
        snap(static_cast<double>(areas[static_cast<std::size_t>(r)]) /
                 static_cast<double>(n),
             g, 0, n - used - g);
    widths[static_cast<std::size_t>(i)] = w;
    used += w;
  }
  widths[0] = n - used;  // the largest absorbs the rounding error
  if (widths[0] < 0) {
    throw std::invalid_argument("build_shape: 1D widths overflow n");
  }
  PartitionSpec spec;
  spec.n = n;
  spec.subplda = 1;
  spec.subpldb = p;
  spec.subph = {n};
  spec.subpw = widths;
  spec.subp.resize(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    spec.subp[static_cast<std::size_t>(i)] =
        order[static_cast<std::size_t>(i)];
  }
  return spec;
}

}  // namespace

const std::vector<Shape>& all_shapes() {
  static const std::vector<Shape> kAll = {
      Shape::kSquareCorner, Shape::kSquareRectangle, Shape::kBlockRectangle,
      Shape::kOneDimensional};
  return kAll;
}

const std::vector<Shape>& extended_shapes() {
  static const std::vector<Shape> kAll = {
      Shape::kSquareCorner, Shape::kSquareRectangle, Shape::kBlockRectangle,
      Shape::kOneDimensional, Shape::kLRectangle, Shape::kLayered};
  return kAll;
}

const char* shape_name(Shape shape) {
  switch (shape) {
    case Shape::kSquareCorner:
      return "square_corner";
    case Shape::kSquareRectangle:
      return "square_rectangle";
    case Shape::kBlockRectangle:
      return "block_rectangle";
    case Shape::kOneDimensional:
      return "one_dimensional";
    case Shape::kLRectangle:
      return "l_rectangle";
    case Shape::kLayered:
      return "layered";
  }
  return "?";
}

std::vector<int> ranks_by_area(const std::vector<std::int64_t>& areas) {
  std::vector<int> order(areas.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return areas[static_cast<std::size_t>(a)] >
           areas[static_cast<std::size_t>(b)];
  });
  return order;
}

PartitionSpec build_shape(Shape shape, std::int64_t n,
                          const std::vector<std::int64_t>& areas,
                          std::int64_t granularity) {
  check_inputs(n, areas, granularity);
  const auto p = static_cast<int>(areas.size());
  PartitionSpec spec;
  switch (shape) {
    case Shape::kSquareCorner:
      if (p == 3) {
        spec = square_corner3(n, areas, granularity);
      } else if (p == 2) {
        spec = square_corner2(n, areas, granularity);
      } else {
        throw std::invalid_argument(
            "build_shape: square corner needs 2 or 3 processors");
      }
      break;
    case Shape::kSquareRectangle:
      if (p != 3) {
        throw std::invalid_argument(
            "build_shape: square rectangle needs 3 processors");
      }
      spec = square_rectangle(n, areas, granularity);
      break;
    case Shape::kBlockRectangle:
      if (p != 3) {
        throw std::invalid_argument(
            "build_shape: block rectangle needs 3 processors");
      }
      spec = block_rectangle(n, areas, granularity);
      break;
    case Shape::kOneDimensional:
      if (p < 1) throw std::invalid_argument("build_shape: p < 1");
      spec = one_dimensional(n, areas, granularity);
      break;
    case Shape::kLRectangle:
      if (p != 3) {
        throw std::invalid_argument(
            "build_shape: L rectangle needs 3 processors");
      }
      spec = l_rectangle(n, areas, granularity);
      break;
    case Shape::kLayered: {
      if (p < 1) throw std::invalid_argument("build_shape: p < 1");
      // Run the layered DP on the (n/g) x (n/g) block grid and scale back
      // up: every layer height and slice width is then a multiple of g.
      const std::int64_t m = n / granularity;
      const std::int64_t g2 = granularity * granularity;
      std::vector<std::int64_t> coarse(areas.size(), 0);
      std::int64_t sum = 0;
      for (std::size_t i = 0; i < areas.size(); ++i) {
        coarse[i] = std::llround(static_cast<double>(areas[i]) /
                                 static_cast<double>(g2));
        sum += coarse[i];
      }
      // The largest rank absorbs the block-rounding error.
      const auto order = ranks_by_area(areas);
      coarse[static_cast<std::size_t>(order[0])] += m * m - sum;
      if (coarse[static_cast<std::size_t>(order[0])] < 0) {
        throw std::invalid_argument(
            "build_shape: granularity too coarse for layered areas");
      }
      spec = layered_partition(m, coarse);
      spec.n = n;
      for (auto& h : spec.subph) h *= granularity;
      for (auto& w : spec.subpw) w *= granularity;
      break;
    }
  }
  spec.validate(p);
  return spec;
}

}  // namespace summagen::partition

// Experiment runner: one call = one PMM execution for one shape, exactly
// the unit the paper's Figures 6-8 sweep.
//
// The runner wires the full pipeline: workload partitioning (CPM or the
// FPM load-imbalancing partitioner) -> shape construction (Section V) ->
// SummaGen over the sgmpi runtime with one abstract processor per rank ->
// metric extraction (execution/computation/communication time split,
// TFLOPs, communication volume, dynamic energy) and, on the numeric plane,
// verification against the serial reference.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/blas/gemm.hpp"
#include "src/core/drift.hpp"
#include "src/core/recovery.hpp"
#include "src/core/runtime_context.hpp"
#include "src/core/summagen.hpp"
#include "src/device/drift.hpp"
#include "src/device/platform.hpp"
#include "src/energy/energy.hpp"
#include "src/partition/areas.hpp"
#include "src/partition/shapes.hpp"
#include "src/util/accounting.hpp"

namespace summagen::core {

/// Which performance models drive the workload distribution (Section VI).
enum class Regime {
  kConstant,    ///< constant speeds (paper VI-A, speeds {1.0, 2.0, 0.9})
  kFunctional,  ///< non-smooth FPMs + load-imbalancing partitioner (VI-B)
};

struct ExperimentConfig {
  device::Platform platform = device::Platform::hclserver1();
  std::int64_t n = 1024;
  partition::Shape shape = partition::Shape::kSquareCorner;
  Regime regime = Regime::kConstant;

  /// CPM speeds; empty = derive from the platform's contended profiles over
  /// the constant range (how the paper obtains {1.0, 2.0, 0.9}).
  std::vector<double> cpm_speeds;

  /// FPM models; empty = build Figure-5 profiles from the platform.
  std::vector<device::SpeedFunction> fpm_models;
  partition::FpmOptions fpm_options;

  /// Non-empty: skip Step 1 and use these per-rank areas directly (must sum
  /// to n*n). Lets sweeps partition once and reuse across shapes.
  std::vector<std::int64_t> preset_areas;

  /// preset_spec.n > 0: skip shape construction entirely and execute this
  /// layout (any partitioner's output — NRRP, column-based, hand-built).
  /// `shape` is ignored; the spec's n must equal `n`.
  partition::PartitionSpec preset_spec;

  std::int64_t granularity = 1;  ///< block size r for shape dimensions
  SummaGenOptions summagen_options;  ///< e.g. panelled broadcasts

  bool numeric = false;        ///< real data + verification (small n only)
  bool record_events = false;  ///< event log + energy accounting
  bool contended = true;       ///< paper methodology: co-loaded profiles
  std::uint64_t seed = 42;     ///< matrix initialisation (numeric plane)
  /// Numeric DGEMM kernel. `kernel.threads` == 0 (default) sizes the shared
  /// compute pool to hardware_concurrency() minus the rank threads; a
  /// positive value overrides the pool size (clamped to the hardware).
  /// Under an active RuntimeContext the context owns the pool and per-job
  /// pool sizing — including this override — is ignored.
  blas::GemmOptions kernel;

  /// Caller-asserted plan identity for cross-job reuse (0 = none, the
  /// default). With an active RuntimeContext, jobs passing equal non-zero
  /// keys promise identical plan-relevant configuration (platform, n,
  /// shape, regime, speeds/models, granularity, preset fields) — the same
  /// caller-asserted contract as blas b_pack_key — and share one cached
  /// partition + areas instead of re-running Steps 1-2. The key also seeds
  /// the job's pack namespace, so identical jobs additionally reuse packed
  /// B panels across the stream. Ignored without an active context.
  std::uint64_t plan_cache_key = 0;

  /// Run-to-run measurement noise: lognormal sigma applied to every local
  /// kernel's compute time, seeded per (noise_seed, rank). 0 = the default
  /// deterministic model. Vary noise_seed across repetitions to drive the
  /// Student-t measurement methodology of the paper's Section VI.
  double noise_sigma = 0.0;
  std::uint64_t noise_seed = 1;

  /// Fault injection plan (DESIGN.md "Fault model"). Empty = the exact
  /// fault-free execution path: results and virtual timing are bit-identical
  /// to a build without fault support. Non-empty: the runner becomes fault
  /// tolerant — on a rank crash or slowdown the survivors shrink, the
  /// unfinished area is re-partitioned over them (CPM/FPM weights, degraded
  /// ranks at reduced speed), and only the lost work is re-executed.
  sgmpi::FaultPlan faults;
  double fault_detect_s = 0.05;  ///< modeled failure-detection latency

  /// Time-varying device-speed profile (DESIGN.md §5.13). Empty = the exact
  /// static model. Non-empty: each rank's modeled compute time is scaled by
  /// device::drift_factor at every quantum's start — fully deterministic in
  /// virtual time, numeric kernels unaffected.
  device::DriftPlan drift;

  /// Execution engine (DESIGN.md §5.14): kThread = one OS thread per rank
  /// (default), kModeled = cooperative fibers on one scheduler thread —
  /// results and virtual times bit-identical, p=1024–4096 becomes cheap.
  sgmpi::Engine engine = sgmpi::Engine::kThread;
  /// Stack reservation per modeled rank; 0 = the 1 MiB default.
  std::size_t fiber_stack_bytes = 0;
  /// Broadcast algorithm priced into collective costs; kTree (the
  /// historical binomial tree) keeps virtual times bit-identical.
  trace::BcastAlgo bcast_algo = trace::BcastAlgo::kTree;
  /// Two-level topology-aware collective pricing (off = historical flat).
  bool two_level_collectives = false;

  /// Online drift detection and mid-run re-partitioning. Disabled (default)
  /// = a drifting run limps along under the static plan. Enabled: every
  /// rank runs a DriftController over its per-step observed/predicted
  /// ratios; a confirmed drift sheds the victim's remaining compute,
  /// surfaces as a kDrift event at the commit gate, and the run re-partitions
  /// the unfinished cells over live-measured speeds (bounded by
  /// repartition.max_repartitions, warmup backoff per round).
  RepartitionOptions repartition;
};

/// One drift-triggered mid-run re-partition (repartition.enabled runs).
struct RepartitionEvent {
  int epoch = 0;               ///< partition epoch entered (1 = first)
  double trigger_vtime = 0.0;  ///< virtual time the detector confirmed
  int trigger_rank = -1;       ///< earliest confirming rank of the round
  /// Live-measured relative speeds the new partition was derived from, per
  /// surviving member (static weight / the confirming step's
  /// observed-over-predicted ratio).
  std::vector<double> measured_speeds;
  std::int64_t redone_cells = 0;  ///< unfinished cells that changed owner
  std::int64_t redone_area = 0;   ///< area of those cells (elements)
  RepartitionFamily family = RepartitionFamily::kGrid;  ///< chosen layout
};

/// Everything measured in one execution.
struct ExperimentResult {
  partition::PartitionSpec spec;
  std::vector<std::int64_t> areas;  ///< requested per-rank areas

  double exec_time_s = 0.0;  ///< parallel execution time (max over ranks)
  double comp_time_s = 0.0;  ///< max per-rank computation time (Fig 6b/7b)
  double comm_time_s = 0.0;  ///< max per-rank MPI time (Fig 6c/7c)
  double tflops = 0.0;       ///< 2 n^3 / exec_time / 1e12

  std::vector<RankReport> reports;       ///< per rank
  std::vector<double> rank_exec_s;       ///< per-rank completion times
  std::vector<double> rank_comp_s;
  std::vector<double> rank_comm_s;
  std::vector<double> rank_idle_s;
  /// Per-rank broadcast cost hidden behind compute by the pipelined
  /// scheduler (all zero under Scheduler::kEager).
  std::vector<double> rank_hidden_s;
  double hidden_comm_time_s = 0.0;  ///< max over ranks — the overlap win

  std::int64_t total_half_perimeter = 0;  ///< theory comm-volume metric

  bool has_energy = false;
  energy::EnergyBreakdown energy;
  std::vector<trace::Event> events;  ///< full trace (record_events only)

  bool verified = false;        ///< numeric plane: C matched the reference
  double max_abs_error = 0.0;   ///< numeric plane: worst |C - C_ref|

  /// Data-plane allocation/copy accounting over the execution window:
  /// per-rank local stores, broadcasts, compute workspaces and the C
  /// gather. Excludes building the global inputs and the serial
  /// verification reference. Counter fields are this job's events,
  /// attributed via a per-job StatsSink riding the pool's task token (so
  /// overlapping service jobs never bill each other's work); pool
  /// residency fields are process-wide absolutes at run end.
  util::DataPlaneStats alloc;

  /// True when the partition + areas came from the RuntimeContext plan
  /// cache instead of being recomputed (plan_cache_key runs only).
  bool plan_cache_hit = false;

  // --- Fault-tolerance accounting (all zero without a fault plan) ---
  int recoveries = 0;  ///< shrink-and-repartition rounds executed
  /// Virtual time from the first interrupting fault's trigger to its first
  /// detection by a survivor.
  double detection_latency_s = 0.0;
  /// Total virtual time spent between fault triggers and the survivors'
  /// agreement (shrink) that handled them.
  double recovery_vtime_s = 0.0;
  /// Unfinished C area (elements) that changed owner during recoveries.
  std::int64_t redistributed_area = 0;
  std::vector<sgmpi::FaultRecord> fault_records;  ///< per injected event

  /// Drift-triggered re-partitions, in occurrence order (empty unless
  /// config.repartition.enabled and a drift was confirmed).
  std::vector<RepartitionEvent> repartitions;
};

/// Runs one PMM. Throws on configuration errors (shape/processor-count
/// mismatch, numeric plane at absurd n, ...).
///
/// Standalone (no active RuntimeContext): sizes the shared pool per call,
/// exactly the historical behaviour. Under an active RuntimeContext the
/// pool is left alone (the context sized it) and, when plan_cache_key is
/// set, the plan phase is served from the context's plan cache.
ExperimentResult run_pmm(const ExperimentConfig& config);

/// The plan phase of run_pmm, reusable across jobs: validates the config's
/// plan inputs and produces the partition spec + per-rank areas (Steps 1-2
/// of the paper's pipeline — preset areas/spec honoured exactly as in
/// run_pmm). Pure function of the config; run_pmm calls it (directly or
/// through the RuntimeContext plan cache) so split and monolithic
/// executions are bit-identical.
JobPlan plan_pmm(const ExperimentConfig& config);

/// Step 1 of Section V for this config: the per-rank areas.
std::vector<std::int64_t> compute_areas(const ExperimentConfig& config);

/// Figure-5 profiles of the platform suitable for partitioning problems of
/// size up to n (sampled up to the largest zone edge).
std::vector<device::SpeedFunction> default_fpm_models(
    const device::Platform& platform, std::int64_t n,
    device::Interpolation interp = device::Interpolation::kPiecewiseLinear);

/// The CPM speeds the paper reads off Figure 5 for its constant range —
/// derived from the platform's contended profiles.
std::vector<double> default_cpm_speeds(const device::Platform& platform);

}  // namespace summagen::core

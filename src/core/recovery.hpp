// Shrink-and-repartition recovery for SummaGen (DESIGN.md "Fault model").
//
// When a rank crashes (or degrades) mid-run, the survivors agree on the
// failure epoch via sgmpi::Comm::shrink() and must then re-derive a data
// distribution for the work that was lost. This header holds the pure,
// deterministic pieces of that recovery: re-owning the *unfinished* cells
// of the sub-partition grid over the survivors, and gathering C cells from
// the execution phase that actually computed them.
//
// The sub-partition grid (subph/subpw) is preserved across recoveries: only
// cell ownership changes. That keeps every phase's communication schedule
// derivable by the existing planner, and makes C assembly a per-cell copy.
// Owners are world ranks throughout — a recovery phase's spec simply never
// references the dead ranks, so its broadcasts only ever group survivors.
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "src/core/dataplane.hpp"
#include "src/partition/spec.hpp"
#include "src/util/matrix.hpp"

namespace summagen::core {

/// Completed sub-partition cells, as (bi, bj) grid coordinates.
using CellSet = std::set<std::pair<int, int>>;

/// Re-owns the cells of `old_spec`'s grid over the `survivors`.
///
/// Cells in `done` keep (a survivor as) a nominal owner but carry no work;
/// unfinished cells are distributed so each survivor's assigned area is
/// proportional to its weight (CPM/FPM target), preferring the previous
/// owner when it survived and is not overfull — re-execution then reuses
/// locality and `redistributed_area` (area of unfinished cells that changed
/// hands) stays small.
///
/// `old_spec`'s owners and `survivors` (ascending) are world ranks, and so
/// are the returned spec's owners. `survivor_weights` are positive relative
/// speeds (size == survivors.size()). Deterministic: every survivor
/// computes the identical spec.
partition::PartitionSpec repartition_unfinished(
    const partition::PartitionSpec& old_spec, const CellSet& done,
    const std::vector<int>& survivors,
    const std::vector<double>& survivor_weights,
    std::int64_t* redistributed_area);

/// Layered re-owning over the preserved grid (the Liu/Shi/Zhang/Robertazzi
/// layer idea applied at cell granularity): unfinished cells are walked in
/// row-major (bi, bj) order and dealt to survivors as contiguous runs whose
/// areas are weight-proportional — each survivor ends up owning a band of
/// consecutive cells. Trades the locality preference of
/// repartition_unfinished for run contiguity (fewer, wider broadcasts when
/// the old ownership is badly scrambled). Done-cell parking and all
/// preconditions match repartition_unfinished. Deterministic.
partition::PartitionSpec repartition_layered(
    const partition::PartitionSpec& old_spec, const CellSet& done,
    const std::vector<int>& survivors,
    const std::vector<double>& survivor_weights,
    std::int64_t* redistributed_area);

/// Which re-partitioner produced a recovery phase's spec.
enum class RepartitionFamily { kGrid, kLayered };

const char* repartition_family_name(RepartitionFamily family);

/// Predicted makespan of `spec`'s unfinished work under per-survivor
/// relative speeds: max over survivors of (assigned unfinished area /
/// weight). The selection metric of choose_repartition.
double predicted_makespan(const partition::PartitionSpec& spec,
                          const CellSet& done,
                          const std::vector<int>& survivors,
                          const std::vector<double>& survivor_weights);

/// Builds both candidate re-ownings (grid-locality and layered) and returns
/// the one with the smaller predicted makespan over `survivor_weights`
/// (ties prefer grid locality). Used by drift-triggered re-partitioning,
/// where live-measured speeds can invert the static order and the layered
/// deal wins; crash recovery keeps calling repartition_unfinished directly.
partition::PartitionSpec choose_repartition(
    const partition::PartitionSpec& old_spec, const CellSet& done,
    const std::vector<int>& survivors,
    const std::vector<double>& survivor_weights,
    std::int64_t* redistributed_area, RepartitionFamily* chosen);

/// Copies the C sub-partition (bi, bj) out of `owner_data` — the local
/// store, under `spec`, of the rank that computed the cell — into the
/// global C matrix.
void copy_cell_c(const partition::PartitionSpec& spec,
                 const LocalData& owner_data, int bi, int bj,
                 util::Matrix& c_global);

}  // namespace summagen::core

#include "src/core/panel_bcast.hpp"

#include <stdexcept>

namespace summagen::core {

PanelBcastStats bcast_k_panel(sgmpi::Comm& comm, PanelAxis axis,
                              std::int64_t n, int parts, int my_index,
                              std::int64_t extent, std::int64_t k0,
                              std::int64_t bcur, util::ConstMatrixView block,
                              util::MatrixView dst) {
  if (parts < 1 || my_index < 0 || my_index >= parts) {
    throw std::invalid_argument("bcast_k_panel: bad part index");
  }
  if (extent < 1 || bcur < 1 || k0 < 0 || k0 + bcur > n) {
    throw std::invalid_argument("bcast_k_panel: panel outside [0, n)");
  }
  const bool numeric = dst.data() != nullptr;
  if (numeric) {
    const std::int64_t want_rows = axis == PanelAxis::kA ? extent : bcur;
    const std::int64_t want_cols = axis == PanelAxis::kA ? bcur : extent;
    if (dst.rows() != want_rows || dst.cols() != want_cols) {
      throw std::invalid_argument("bcast_k_panel: workspace shape mismatch");
    }
  }

  PanelBcastStats stats;
  std::int64_t k = k0;
  while (k < k0 + bcur) {
    int owner = 0;
    while (balanced_part_offset(n, parts, owner + 1) <= k) ++owner;
    const std::int64_t seg_end = std::min<std::int64_t>(
        k0 + bcur, balanced_part_offset(n, parts, owner + 1));
    const std::int64_t seg = seg_end - k;
    const bool mine = my_index == owner;
    const std::int64_t local_k = k - balanced_part_offset(n, parts, owner);

    util::MatrixView dseg;
    util::ConstMatrixView sseg;
    if (numeric) {
      if (axis == PanelAxis::kA) {
        dseg = dst.subview(0, k - k0, extent, seg);
        if (mine) sseg = block.subview(0, local_k, extent, seg);
      } else {
        dseg = dst.subview(k - k0, 0, seg, extent);
        if (mine) sseg = block.subview(local_k, 0, seg, extent);
      }
    }

    if (parts > 1) {
      const std::int64_t bytes =
          extent * seg * static_cast<std::int64_t>(sizeof(double));
      if (numeric) {
        stats.mpi_time_s += comm.bcast_panel(
            mine ? sseg : util::ConstMatrixView{}, dseg, owner);
      } else {
        stats.mpi_time_s += comm.bcast_bytes(nullptr, bytes, owner);
      }
      ++stats.bcasts;
      stats.bytes += bytes;
    } else if (numeric) {
      util::copy_view(sseg, dseg);
    }
    k = seg_end;
  }
  return stats;
}

}  // namespace summagen::core

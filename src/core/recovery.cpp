#include "src/core/recovery.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace summagen::core {

namespace {

struct Cell {
  int bi;
  int bj;
  std::int64_t area;
  int old_owner;  // world rank
};

int survivor_index(const std::vector<int>& survivors, int world_rank) {
  const auto it =
      std::find(survivors.begin(), survivors.end(), world_rank);
  return it == survivors.end() ? -1
                               : static_cast<int>(it - survivors.begin());
}

}  // namespace

partition::PartitionSpec repartition_unfinished(
    const partition::PartitionSpec& old_spec, const CellSet& done,
    const std::vector<int>& survivors,
    const std::vector<double>& survivor_weights,
    std::int64_t* redistributed_area) {
  if (survivors.empty()) {
    throw std::invalid_argument("recovery: no survivors to repartition over");
  }
  if (survivor_weights.size() != survivors.size()) {
    throw std::invalid_argument(
        "recovery: survivor_weights size mismatch (" +
        std::to_string(survivor_weights.size()) + " weights for " +
        std::to_string(survivors.size()) + " survivors)");
  }
  double weight_sum = 0.0;
  for (double w : survivor_weights) {
    if (w <= 0.0) {
      throw std::invalid_argument("recovery: survivor weight must be > 0");
    }
    weight_sum += w;
  }

  partition::PartitionSpec spec = old_spec;  // grid (subph/subpw) preserved
  std::vector<Cell> unfinished;
  std::int64_t total_unfinished = 0;
  for (int bi = 0; bi < old_spec.subplda; ++bi) {
    for (int bj = 0; bj < old_spec.subpldb; ++bj) {
      const int old_owner = old_spec.owner(bi, bj);
      const std::size_t at = static_cast<std::size_t>(bi) *
                                 static_cast<std::size_t>(old_spec.subpldb) +
                             static_cast<std::size_t>(bj);
      if (done.count({bi, bj}) != 0) {
        // Finished cell: no work to carry, but the spec must stay valid —
        // keep the old owner if it survived, else park it on survivor 0.
        spec.subp[at] = survivor_index(survivors, old_owner) >= 0
                            ? old_owner
                            : survivors[0];
        continue;
      }
      const std::int64_t area =
          old_spec.subph[static_cast<std::size_t>(bi)] *
          old_spec.subpw[static_cast<std::size_t>(bj)];
      unfinished.push_back({bi, bj, area, old_owner});
      total_unfinished += area;
    }
  }

  // Weight-proportional targets over the unfinished area; largest cells are
  // placed first so remainders land on small cells where imbalance is cheap.
  std::vector<double> target(survivors.size());
  std::vector<std::int64_t> assigned(survivors.size(), 0);
  for (std::size_t s = 0; s < survivors.size(); ++s) {
    target[s] = static_cast<double>(total_unfinished) * survivor_weights[s] /
                weight_sum;
  }
  std::sort(unfinished.begin(), unfinished.end(),
            [](const Cell& a, const Cell& b) {
              if (a.area != b.area) return a.area > b.area;
              if (a.bi != b.bi) return a.bi < b.bi;
              return a.bj < b.bj;
            });

  const double slack = 0.25 * static_cast<double>(total_unfinished) /
                       static_cast<double>(survivors.size());
  std::int64_t redistributed = 0;
  for (const Cell& cell : unfinished) {
    const int pref = survivor_index(survivors, cell.old_owner);
    int chosen = -1;
    if (pref >= 0 &&
        static_cast<double>(assigned[static_cast<std::size_t>(pref)] +
                            cell.area) <=
            target[static_cast<std::size_t>(pref)] + slack) {
      chosen = pref;
    } else {
      // Most-underfilled survivor (largest target - assigned), lowest
      // rank on ties — deterministic across all callers.
      double best_deficit = 0.0;
      for (std::size_t s = 0; s < survivors.size(); ++s) {
        const double deficit =
            target[s] - static_cast<double>(assigned[s]);
        if (chosen < 0 || deficit > best_deficit) {
          chosen = static_cast<int>(s);
          best_deficit = deficit;
        }
      }
    }
    assigned[static_cast<std::size_t>(chosen)] += cell.area;
    if (survivors[static_cast<std::size_t>(chosen)] != cell.old_owner) {
      redistributed += cell.area;
    }
    spec.subp[static_cast<std::size_t>(cell.bi) *
                  static_cast<std::size_t>(old_spec.subpldb) +
              static_cast<std::size_t>(cell.bj)] =
        survivors[static_cast<std::size_t>(chosen)];
  }

  if (redistributed_area != nullptr) *redistributed_area = redistributed;
  spec.validate();
  return spec;
}

partition::PartitionSpec repartition_layered(
    const partition::PartitionSpec& old_spec, const CellSet& done,
    const std::vector<int>& survivors,
    const std::vector<double>& survivor_weights,
    std::int64_t* redistributed_area) {
  if (survivors.empty()) {
    throw std::invalid_argument("recovery: no survivors to repartition over");
  }
  if (survivor_weights.size() != survivors.size()) {
    throw std::invalid_argument(
        "recovery: survivor_weights size mismatch (" +
        std::to_string(survivor_weights.size()) + " weights for " +
        std::to_string(survivors.size()) + " survivors)");
  }
  double weight_sum = 0.0;
  for (double w : survivor_weights) {
    if (w <= 0.0) {
      throw std::invalid_argument("recovery: survivor weight must be > 0");
    }
    weight_sum += w;
  }

  partition::PartitionSpec spec = old_spec;  // grid (subph/subpw) preserved
  std::vector<Cell> unfinished;  // row-major (bi, bj) walk order
  std::int64_t total_unfinished = 0;
  for (int bi = 0; bi < old_spec.subplda; ++bi) {
    for (int bj = 0; bj < old_spec.subpldb; ++bj) {
      const int old_owner = old_spec.owner(bi, bj);
      const std::size_t at = static_cast<std::size_t>(bi) *
                                 static_cast<std::size_t>(old_spec.subpldb) +
                             static_cast<std::size_t>(bj);
      if (done.count({bi, bj}) != 0) {
        spec.subp[at] = survivor_index(survivors, old_owner) >= 0
                            ? old_owner
                            : survivors[0];
        continue;
      }
      const std::int64_t area =
          old_spec.subph[static_cast<std::size_t>(bi)] *
          old_spec.subpw[static_cast<std::size_t>(bj)];
      unfinished.push_back({bi, bj, area, old_owner});
      total_unfinished += area;
    }
  }

  // Deal contiguous runs: survivor s takes cells until the cumulative area
  // reaches its weight-proportional prefix target — the 1D layered cut of
  // the row-major cell sequence. A run may be empty when a cell straddles
  // two targets; the last survivor always absorbs the tail.
  std::vector<double> prefix_target(survivors.size());
  double acc = 0.0;
  for (std::size_t s = 0; s < survivors.size(); ++s) {
    acc += survivor_weights[s];
    prefix_target[s] =
        static_cast<double>(total_unfinished) * acc / weight_sum;
  }
  std::int64_t redistributed = 0;
  std::int64_t placed = 0;
  std::size_t s = 0;
  for (const Cell& cell : unfinished) {
    // Advance past survivors whose prefix target is already met; assigning
    // the cell to the first open survivor keeps runs contiguous.
    while (s + 1 < survivors.size() &&
           static_cast<double>(placed) + 0.5 * static_cast<double>(cell.area) >
               prefix_target[s]) {
      ++s;
    }
    spec.subp[static_cast<std::size_t>(cell.bi) *
                  static_cast<std::size_t>(old_spec.subpldb) +
              static_cast<std::size_t>(cell.bj)] = survivors[s];
    if (survivors[s] != cell.old_owner) redistributed += cell.area;
    placed += cell.area;
  }

  if (redistributed_area != nullptr) *redistributed_area = redistributed;
  spec.validate();
  return spec;
}

const char* repartition_family_name(RepartitionFamily family) {
  switch (family) {
    case RepartitionFamily::kGrid:
      return "grid";
    case RepartitionFamily::kLayered:
      return "layered";
  }
  return "?";
}

double predicted_makespan(const partition::PartitionSpec& spec,
                          const CellSet& done,
                          const std::vector<int>& survivors,
                          const std::vector<double>& survivor_weights) {
  std::vector<std::int64_t> assigned(survivors.size(), 0);
  for (int bi = 0; bi < spec.subplda; ++bi) {
    for (int bj = 0; bj < spec.subpldb; ++bj) {
      if (done.count({bi, bj}) != 0) continue;
      const int s = survivor_index(survivors, spec.owner(bi, bj));
      if (s < 0) continue;  // unfinished cell of a dead rank: no charge yet
      assigned[static_cast<std::size_t>(s)] +=
          spec.subph[static_cast<std::size_t>(bi)] *
          spec.subpw[static_cast<std::size_t>(bj)];
    }
  }
  double makespan = 0.0;
  for (std::size_t s = 0; s < survivors.size(); ++s) {
    makespan = std::max(makespan, static_cast<double>(assigned[s]) /
                                      survivor_weights[s]);
  }
  return makespan;
}

partition::PartitionSpec choose_repartition(
    const partition::PartitionSpec& old_spec, const CellSet& done,
    const std::vector<int>& survivors,
    const std::vector<double>& survivor_weights,
    std::int64_t* redistributed_area, RepartitionFamily* chosen) {
  std::int64_t grid_moved = 0, layered_moved = 0;
  partition::PartitionSpec grid = repartition_unfinished(
      old_spec, done, survivors, survivor_weights, &grid_moved);
  partition::PartitionSpec layered = repartition_layered(
      old_spec, done, survivors, survivor_weights, &layered_moved);
  const double grid_ms =
      predicted_makespan(grid, done, survivors, survivor_weights);
  const double layered_ms =
      predicted_makespan(layered, done, survivors, survivor_weights);
  const bool take_layered = layered_ms < grid_ms;
  if (chosen != nullptr) {
    *chosen = take_layered ? RepartitionFamily::kLayered
                           : RepartitionFamily::kGrid;
  }
  if (redistributed_area != nullptr) {
    *redistributed_area = take_layered ? layered_moved : grid_moved;
  }
  return take_layered ? layered : grid;
}

void copy_cell_c(const partition::PartitionSpec& spec,
                 const LocalData& owner_data, int bi, int bj,
                 util::Matrix& c_global) {
  const std::int64_t h = spec.subph[static_cast<std::size_t>(bi)];
  const std::int64_t w = spec.subpw[static_cast<std::size_t>(bj)];
  if (h == 0 || w == 0) return;
  const auto roff = spec.row_offsets();
  const auto coff = spec.col_offsets();
  const std::int64_t r0 = roff[static_cast<std::size_t>(bi)];
  const std::int64_t c0 = coff[static_cast<std::size_t>(bj)];
  const partition::Rect& rect = owner_data.c_rect();
  const util::ConstMatrixView local = owner_data.c();
  const double* src = local.data() +
                      (r0 - rect.row0) * local.ld() + (c0 - rect.col0);
  double* dst = c_global.data() + r0 * c_global.cols() + c0;
  util::copy_matrix(dst, c_global.cols(), src, local.ld(), h, w);
}

}  // namespace summagen::core

#include "src/core/scaling.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace summagen::core {

double scaling_speedup(double single_node_exec_s, double exec_s) {
  if (single_node_exec_s <= 0.0 || exec_s <= 0.0) return 0.0;
  return single_node_exec_s / exec_s;
}

double scaling_efficiency_pct(double speedup, std::int64_t nodes) {
  if (nodes <= 0) return 0.0;
  return 100.0 * speedup / static_cast<double>(nodes);
}

void ScalingTable::add(const ScalingMeasurement& m) {
  measurements_.push_back(m);
}

bool ScalingTable::has_baseline(const std::string& name) const {
  return std::any_of(measurements_.begin(), measurements_.end(),
                     [&](const ScalingMeasurement& m) {
                       return m.name == name && m.nodes == 1;
                     });
}

std::vector<std::string> ScalingTable::missing_baselines() const {
  std::vector<std::string> missing;
  for (const ScalingMeasurement& m : measurements_) {
    if (has_baseline(m.name)) continue;
    if (std::find(missing.begin(), missing.end(), m.name) == missing.end()) {
      missing.push_back(m.name);
    }
  }
  return missing;
}

std::vector<ScalingTable::Row> ScalingTable::rows() const {
  std::map<std::string, double> baseline;
  for (const ScalingMeasurement& m : measurements_) {
    if (m.nodes == 1 && !baseline.contains(m.name)) {
      baseline[m.name] = m.exec_s;
    }
  }
  std::vector<Row> out;
  out.reserve(measurements_.size());
  for (const ScalingMeasurement& m : measurements_) {
    const auto it = baseline.find(m.name);
    if (it == baseline.end()) {
      throw std::logic_error(
          "ScalingTable: configuration '" + m.name +
          "' has no single-node baseline; measure nodes=1 first");
    }
    Row row;
    row.m = m;
    row.speedup = scaling_speedup(it->second, m.exec_s);
    row.efficiency_pct = scaling_efficiency_pct(row.speedup, m.nodes);
    out.push_back(row);
  }
  return out;
}

util::Table ScalingTable::render(const std::string& title) const {
  util::Table t(title);
  t.set_header({"nodes", "p", "partitioner", "exec_s", "comp_s", "mpi_s",
                "speedup", "efficiency_%"});
  for (const Row& row : rows()) {
    t.add_row({util::Table::num(row.m.nodes),
               util::Table::num(static_cast<std::int64_t>(row.m.ranks)),
               row.m.name, util::Table::num(row.m.exec_s, 3),
               util::Table::num(row.m.comp_s, 3),
               util::Table::num(row.m.comm_s, 3),
               util::Table::num(row.speedup, 2),
               util::Table::num(row.efficiency_pct, 0)});
  }
  return t;
}

}  // namespace summagen::core

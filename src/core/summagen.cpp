#include "src/core/summagen.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/util/matrix.hpp"

namespace summagen::core {
namespace {

int root_index(const std::vector<int>& members, int world_rank) {
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == world_rank) return static_cast<int>(i);
  }
  throw std::logic_error("summagen: sub-partition owner not in its row/col");
}

/// Horizontal communications of A (paper Figure 2).
void stage_a(sgmpi::Comm& world, const partition::PartitionSpec& spec,
             LocalData* data, util::Matrix* wa,
             const SummaGenOptions& options, RankReport& report) {
  const int rank = world.rank();
  const auto roff = spec.row_offsets();
  const auto coff = spec.col_offsets();
  const auto [myi, block_lda] = spec.row_span(rank);
  const std::int64_t wa_base = roff[static_cast<std::size_t>(myi)];
  std::vector<double> tmp;

  for (int blocki = myi; blocki < myi + block_lda; ++blocki) {
    if (!spec.row_contains(rank, blocki)) continue;
    const std::int64_t h = spec.subph[static_cast<std::size_t>(blocki)];
    if (h == 0) continue;
    const std::int64_t wa_row0 = roff[static_cast<std::size_t>(blocki)] -
                                 wa_base;
    const std::vector<int> owners = spec.ranks_in_row(blocki);

    if (owners.size() == 1) {
      // Special case: the whole sub-partition row is mine — no
      // communication, just local copies of A into WA.
      if (data != nullptr) {
        for (int bj = 0; bj < spec.subpldb; ++bj) {
          const std::int64_t w = spec.subpw[static_cast<std::size_t>(bj)];
          if (w == 0) continue;
          const util::Matrix& part = data->a_part(blocki, bj);
          util::copy_matrix(
              wa->data() + wa_row0 * wa->cols() +
                  coff[static_cast<std::size_t>(bj)],
              wa->cols(), part.data(), part.cols(), h, w);
        }
      }
      continue;
    }

    sgmpi::Comm row = world.subgroup(owners);
    for (int bj = 0; bj < spec.subpldb; ++bj) {
      const std::int64_t w = spec.subpw[static_cast<std::size_t>(bj)];
      if (w == 0) continue;
      const int owner = spec.owner(blocki, bj);
      const int root = root_index(owners, owner);
      // Optionally split the sub-partition into row panels (the paper's
      // block size r): smaller receive buffers, more broadcasts.
      const std::int64_t panel =
          options.bcast_panel_rows > 0 ? options.bcast_panel_rows : h;
      for (std::int64_t p0 = 0; p0 < h; p0 += panel) {
        const std::int64_t hh = std::min(panel, h - p0);
        const std::int64_t bytes =
            hh * w * static_cast<std::int64_t>(sizeof(double));
        if (data == nullptr) {
          report.mpi_time_s += row.bcast_bytes(nullptr, bytes, root);
        } else {
          const double* src;
          if (owner == rank) {
            // Owned sub-partitions are stored contiguously, so the local A
            // block doubles as the broadcast source buffer.
            const util::Matrix& part = data->a_part(blocki, bj);
            report.mpi_time_s += row.bcast_bytes(
                const_cast<double*>(part.data() + p0 * w), bytes, root);
            src = part.data() + p0 * w;
          } else {
            tmp.resize(static_cast<std::size_t>(hh * w));
            report.mpi_time_s += row.bcast_bytes(tmp.data(), bytes, root);
            src = tmp.data();
          }
          util::copy_matrix(wa->data() + (wa_row0 + p0) * wa->cols() +
                                coff[static_cast<std::size_t>(bj)],
                            wa->cols(), src, w, hh, w);
        }
        ++report.bcasts;
        report.bcast_bytes += bytes;
      }
    }
  }
}

/// Vertical communications of B (paper Figure 3).
void stage_b(sgmpi::Comm& world, const partition::PartitionSpec& spec,
             LocalData* data, util::Matrix* wb,
             const SummaGenOptions& options, RankReport& report) {
  const int rank = world.rank();
  const auto roff = spec.row_offsets();
  const auto coff = spec.col_offsets();
  const auto [myj, block_ldb] = spec.col_span(rank);
  const std::int64_t wb_base = coff[static_cast<std::size_t>(myj)];
  std::vector<double> tmp;

  for (int blockj = myj; blockj < myj + block_ldb; ++blockj) {
    if (!spec.col_contains(rank, blockj)) continue;
    const std::int64_t w = spec.subpw[static_cast<std::size_t>(blockj)];
    if (w == 0) continue;
    const std::int64_t wb_col0 = coff[static_cast<std::size_t>(blockj)] -
                                 wb_base;
    const std::vector<int> owners = spec.ranks_in_col(blockj);

    if (owners.size() == 1) {
      if (data != nullptr) {
        for (int bi = 0; bi < spec.subplda; ++bi) {
          const std::int64_t h = spec.subph[static_cast<std::size_t>(bi)];
          if (h == 0) continue;
          const util::Matrix& part = data->b_part(bi, blockj);
          util::copy_matrix(
              wb->data() + roff[static_cast<std::size_t>(bi)] * wb->cols() +
                  wb_col0,
              wb->cols(), part.data(), part.cols(), h, w);
        }
      }
      continue;
    }

    sgmpi::Comm col = world.subgroup(owners);
    for (int bi = 0; bi < spec.subplda; ++bi) {
      const std::int64_t h = spec.subph[static_cast<std::size_t>(bi)];
      if (h == 0) continue;
      const int owner = spec.owner(bi, blockj);
      const int root = root_index(owners, owner);
      const std::int64_t panel =
          options.bcast_panel_rows > 0 ? options.bcast_panel_rows : h;
      for (std::int64_t p0 = 0; p0 < h; p0 += panel) {
        const std::int64_t hh = std::min(panel, h - p0);
        const std::int64_t bytes =
            hh * w * static_cast<std::int64_t>(sizeof(double));
        if (data == nullptr) {
          report.mpi_time_s += col.bcast_bytes(nullptr, bytes, root);
        } else {
          const double* src;
          if (owner == rank) {
            const util::Matrix& part = data->b_part(bi, blockj);
            report.mpi_time_s += col.bcast_bytes(
                const_cast<double*>(part.data() + p0 * w), bytes, root);
            src = part.data() + p0 * w;
          } else {
            tmp.resize(static_cast<std::size_t>(hh * w));
            report.mpi_time_s += col.bcast_bytes(tmp.data(), bytes, root);
            src = tmp.data();
          }
          util::copy_matrix(
              wb->data() +
                  (roff[static_cast<std::size_t>(bi)] + p0) * wb->cols() +
                  wb_col0,
              wb->cols(), src, w, hh, w);
        }
        ++report.bcasts;
        report.bcast_bytes += bytes;
      }
    }
  }
}

/// Local computations (paper Figure 4): one DGEMM per owned sub-partition.
void stage_compute(sgmpi::Comm& world, const partition::PartitionSpec& spec,
                   const device::AbstractProcessor& ap, LocalData* data,
                   const util::Matrix* wa, const util::Matrix* wb,
                   bool contended, RankReport& report) {
  const int rank = world.rank();
  const auto roff = spec.row_offsets();
  const auto coff = spec.col_offsets();
  const auto [myi, block_lda] = spec.row_span(rank);
  const auto [myj, block_ldb] = spec.col_span(rank);
  const std::int64_t wa_base = roff[static_cast<std::size_t>(myi)];
  const std::int64_t wb_base = coff[static_cast<std::size_t>(myj)];

  for (int blocki = myi; blocki < myi + block_lda; ++blocki) {
    const std::int64_t h = spec.subph[static_cast<std::size_t>(blocki)];
    if (h == 0) continue;
    for (int blockj = myj; blockj < myj + block_ldb; ++blockj) {
      const std::int64_t w = spec.subpw[static_cast<std::size_t>(blockj)];
      if (w == 0) continue;
      if (spec.owner(blocki, blockj) != rank) continue;

      device::KernelCost cost;
      if (data == nullptr) {
        cost = ap.kernel_cost(h, w, spec.n, contended);
      } else {
        const partition::Rect& cr = data->c_rect();
        const std::int64_t wa_row0 =
            roff[static_cast<std::size_t>(blocki)] - wa_base;
        const std::int64_t wb_col0 =
            coff[static_cast<std::size_t>(blockj)] - wb_base;
        double* cptr =
            data->c().data() +
            (roff[static_cast<std::size_t>(blocki)] - cr.row0) *
                data->c().cols() +
            (coff[static_cast<std::size_t>(blockj)] - cr.col0);
        cost = ap.run_gemm(h, w, spec.n, wa->data() + wa_row0 * wa->cols(),
                           wa->cols(), wb->data() + wb_col0, wb->cols(), cptr,
                           data->c().cols(), contended);
      }

      auto& clk = world.clock();
      const double t0 = clk.now();
      clk.advance_compute(cost.compute_s);
      if (world.events().enabled()) {
        world.events().record({world.world_rank(),
                               trace::EventKind::kCompute, t0, clk.now(),
                               0, blas::gemm_flops(h, w, spec.n),
                               "subp(" + std::to_string(blocki) + "," +
                                   std::to_string(blockj) + ")"});
      }
      if (cost.transfer_s > 0.0) {
        // Host<->device staging: part of the kernel (and of Fig. 6b's
        // computation time), but drawing communication power.
        const double t1 = clk.now();
        clk.advance_compute(cost.transfer_s);
        if (world.events().enabled()) {
          world.events().record({world.world_rank(),
                                 trace::EventKind::kTransfer, t1, clk.now(),
                                 cost.transferred_bytes, 0, "staging"});
        }
      }

      ++report.gemm_calls;
      report.flops += blas::gemm_flops(h, w, spec.n);
      report.kernel_compute_s += cost.compute_s;
      report.kernel_transfer_s += cost.transfer_s;
    }
  }
}

}  // namespace

RankReport summagen_rank(sgmpi::Comm& world,
                         const partition::PartitionSpec& spec,
                         const device::AbstractProcessor& ap, LocalData* data,
                         bool contended, const SummaGenOptions& options) {
  spec.validate(world.size());
  if (data != nullptr && !data->numeric()) {
    throw std::invalid_argument(
        "summagen_rank: pass nullptr for the modeled plane");
  }
  const int rank = world.rank();
  const auto roff = spec.row_offsets();
  const auto coff = spec.col_offsets();
  const auto [myi, block_lda] = spec.row_span(rank);
  const auto [myj, block_ldb] = spec.col_span(rank);

  RankReport report;

  util::Matrix wa, wb;
  if (data != nullptr) {
    const std::int64_t wa_rows =
        roff[static_cast<std::size_t>(myi + block_lda)] -
        roff[static_cast<std::size_t>(myi)];
    const std::int64_t wb_cols =
        coff[static_cast<std::size_t>(myj + block_ldb)] -
        coff[static_cast<std::size_t>(myj)];
    wa = util::Matrix(wa_rows, spec.n);
    wb = util::Matrix(spec.n, wb_cols);
  }

  stage_a(world, spec, data, &wa, options, report);
  stage_b(world, spec, data, &wb, options, report);
  stage_compute(world, spec, ap, data, &wa, &wb, contended, report);
  return report;
}

}  // namespace summagen::core

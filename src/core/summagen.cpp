#include "src/core/summagen.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/blas/pack_cache.hpp"
#include "src/core/plan.hpp"
#include "src/util/buffer_pool.hpp"
#include "src/util/matrix_view.hpp"

namespace summagen::core {

const char* to_string(Scheduler scheduler) {
  switch (scheduler) {
    case Scheduler::kEager:
      return "eager";
    case Scheduler::kPipelined:
      return "pipelined";
  }
  return "?";
}

namespace {

/// Scheduler constant folded into pack tags (disjoint from the SUMMA and
/// 2.5D key spaces even for identical geometry).
constexpr std::uint64_t kSummagenPackTag = 0x5347454eull;  // "SGEN"

/// Rank-invariant geometry shared by every plan step executor.
struct Frame {
  const partition::PartitionSpec& spec;
  LocalData* data;      ///< nullptr on the modeled plane
  util::MatrixView wa;  ///< my_rows x n workspace (empty on modeled plane)
  util::MatrixView wb;  ///< n x my_cols workspace (empty on modeled plane)
  std::vector<std::int64_t> roff;
  std::vector<std::int64_t> coff;
  std::int64_t wa_base = 0;  ///< first matrix row covered by WA
  std::int64_t wb_base = 0;  ///< first matrix column covered by WB

  Frame(const partition::PartitionSpec& spec_in, int rank, LocalData* data_in,
        util::MatrixView wa_in, util::MatrixView wb_in)
      : spec(spec_in),
        data(data_in),
        wa(wa_in),
        wb(wb_in),
        roff(spec_in.row_offsets()),
        coff(spec_in.col_offsets()) {
    const auto [myi, block_lda] = spec.row_span(rank);
    const auto [myj, block_ldb] = spec.col_span(rank);
    (void)block_lda;
    (void)block_ldb;
    wa_base = roff[static_cast<std::size_t>(myi)];
    wb_base = coff[static_cast<std::size_t>(myj)];
  }

  /// Destination of panel rows [op.p0, op.p0 + op.rows) of `op`'s payload
  /// inside WA (A ops) or WB (B ops).
  util::MatrixView dest(const CommOp& op) const {
    if (op.is_a) {
      const std::int64_t row0 =
          roff[static_cast<std::size_t>(op.bi)] - wa_base + op.p0;
      return wa.subview(row0, coff[static_cast<std::size_t>(op.bj)], op.rows,
                        op.width);
    }
    const std::int64_t col0 =
        coff[static_cast<std::size_t>(op.bj)] - wb_base;
    return wb.subview(roff[static_cast<std::size_t>(op.bi)] + op.p0, col0,
                      op.rows, op.width);
  }

  /// The owner's payload for `op`, viewed in place inside the global
  /// operand (panel rows [op.p0, op.p0 + op.rows) of the owned part).
  util::ConstMatrixView owned_src(const CommOp& op) const {
    const util::ConstMatrixView part =
        op.is_a ? data->a_part(op.bi, op.bj) : data->b_part(op.bi, op.bj);
    return part.subview(op.p0, 0, op.rows, op.width);
  }
};

/// Executes a single-owner local copy (zero virtual cost).
void exec_copy(const Frame& frame, const CopyOp& op) {
  if (frame.data == nullptr) return;
  const std::int64_t h = frame.spec.subph[static_cast<std::size_t>(op.bi)];
  const std::int64_t w = frame.spec.subpw[static_cast<std::size_t>(op.bj)];
  if (op.is_a) {
    const std::int64_t row0 =
        frame.roff[static_cast<std::size_t>(op.bi)] - frame.wa_base;
    util::copy_view(frame.data->a_part(op.bi, op.bj),
                    frame.wa.subview(
                        row0, frame.coff[static_cast<std::size_t>(op.bj)], h,
                        w));
  } else {
    const std::int64_t col0 =
        frame.coff[static_cast<std::size_t>(op.bj)] - frame.wb_base;
    util::copy_view(frame.data->b_part(op.bi, op.bj),
                    frame.wb.subview(
                        frame.roff[static_cast<std::size_t>(op.bi)], col0, h,
                        w));
  }
}

/// Executes one local DGEMM of the plan.
void exec_gemm(sgmpi::Comm& world, const Frame& frame,
               const device::AbstractProcessor& ap, const GemmOp& g,
               bool contended, RankReport& report) {
  const partition::PartitionSpec& spec = frame.spec;
  const std::int64_t h = spec.subph[static_cast<std::size_t>(g.bi)];
  const std::int64_t w = spec.subpw[static_cast<std::size_t>(g.bj)];

  device::KernelCost cost;
  if (frame.data == nullptr) {
    cost = ap.kernel_cost(h, w, spec.n, contended);
  } else {
    const partition::Rect& cr = frame.data->c_rect();
    const std::int64_t wa_row0 =
        frame.roff[static_cast<std::size_t>(g.bi)] - frame.wa_base;
    const std::int64_t wb_col0 =
        frame.coff[static_cast<std::size_t>(g.bj)] - frame.wb_base;
    const util::MatrixView cv = frame.data->c();
    double* cptr = cv.data() +
                   (frame.roff[static_cast<std::size_t>(g.bi)] - cr.row0) *
                       cv.ld() +
                   (frame.coff[static_cast<std::size_t>(g.bj)] - cr.col0);
    // The B operand is columns [coff[bj], coff[bj]+w) of global B over the
    // full k axis — bit-identical on every rank computing a cell of
    // sub-partition column bj (different WB buffers and ld, same values),
    // so tag it for the blas pack cache.
    const std::uint64_t wb_key = blas::pack_tag(
        {world.context_uid(), kSummagenPackTag,
         static_cast<std::uint64_t>(spec.n), 0,
         static_cast<std::uint64_t>(spec.n),
         static_cast<std::uint64_t>(
             frame.coff[static_cast<std::size_t>(g.bj)]),
         static_cast<std::uint64_t>(w)});
    cost = ap.run_gemm(h, w, spec.n, frame.wa.row(wa_row0), frame.wa.ld(),
                       frame.wb.data() + wb_col0, frame.wb.ld(), cptr,
                       cv.ld(), contended, wb_key);
  }

  // A planned rank-slowdown fault scales the device's modeled time; the
  // factor is exactly 1.0 with no fault plan, keeping the charge
  // bit-identical.
  const double slow = world.compute_slowdown();
  cost.compute_s *= slow;
  cost.transfer_s *= slow;

  auto& clk = world.clock();
  const double t0 = clk.now();
  clk.advance_compute(cost.compute_s);
  if (world.events().enabled()) {
    world.events().record({world.world_rank(), trace::EventKind::kCompute,
                           t0, clk.now(), 0, blas::gemm_flops(h, w, spec.n),
                           "subp(" + std::to_string(g.bi) + "," +
                               std::to_string(g.bj) + ")"});
  }
  if (cost.transfer_s > 0.0) {
    // Host<->device staging: part of the kernel (and of Fig. 6b's
    // computation time), but drawing communication power.
    const double t1 = clk.now();
    clk.advance_compute(cost.transfer_s);
    if (world.events().enabled()) {
      world.events().record({world.world_rank(), trace::EventKind::kTransfer,
                             t1, clk.now(), cost.transferred_bytes, 0,
                             "staging"});
    }
  }

  ++report.gemm_calls;
  report.flops += blas::gemm_flops(h, w, spec.n);
  report.kernel_compute_s += cost.compute_s;
  report.kernel_transfer_s += cost.transfer_s;
}

/// Drops the plan steps whose outputs are already in `done` (recovery
/// phases re-execute only lost work). A DGEMM for C(bi, bj) reads the whole
/// sub-partition row bi of A and column bj of B, so a broadcast/copy
/// survives iff some remaining DGEMM still reads its row (A ops) or column
/// (B ops). Every rank filters the identical global plan, so collectives
/// stay matched.
void filter_done(ExecutionPlan& plan,
                 const std::set<std::pair<int, int>>& done) {
  std::erase_if(plan.gemm_ops, [&](const GemmOp& g) {
    return done.count({g.bi, g.bj}) != 0;
  });
  std::set<int> live_rows, live_cols;
  for (const GemmOp& g : plan.gemm_ops) {
    live_rows.insert(g.bi);
    live_cols.insert(g.bj);
  }
  const auto dead = [&](bool is_a, int bi, int bj) {
    return is_a ? live_rows.count(bi) == 0 : live_cols.count(bj) == 0;
  };
  std::erase_if(plan.comm_ops, [&](const CommOp& op) {
    return dead(op.is_a, op.bi, op.bj);
  });
  std::erase_if(plan.copy_ops, [&](const CopyOp& op) {
    return dead(op.is_a, op.bi, op.bj);
  });
}

/// The paper's strict phase order (Figs. 2-4) over the plan: every
/// communication blocking, all of A, then all of B, then the DGEMMs.
void run_eager(sgmpi::Comm& world, const Frame& frame,
               const device::AbstractProcessor& ap,
               const ExecutionPlan& plan, bool contended, const FtContext* ft,
               RankReport& report) {
  const int rank = world.rank();

  for (const CopyOp& op : plan.copy_ops) {
    const int owner = frame.spec.owner(op.bi, op.bj);
    if (owner == rank) exec_copy(frame, op);
  }

  for (const CommOp& op : plan.comm_ops) {
    if (std::find(op.owners.begin(), op.owners.end(), rank) ==
        op.owners.end()) {
      continue;
    }
    sgmpi::Comm group = world.subgroup(op.owners);
    if (frame.data == nullptr) {
      report.mpi_time_s += group.bcast_bytes(nullptr, op.bytes, op.root);
    } else if (op.owner == rank) {
      // The owner broadcasts its sub-partition viewed in place inside the
      // global operand; the transport lands its own copy in WA/WB too.
      report.mpi_time_s +=
          group.bcast_panel(frame.owned_src(op), frame.dest(op), op.root);
    } else {
      // Receivers copy straight from the root's view into WA/WB — no
      // contiguous staging buffer on either side.
      report.mpi_time_s += group.bcast_panel({}, frame.dest(op), op.root);
    }
    ++report.bcasts;
    report.bcast_bytes += op.bytes;
  }

  for (const GemmOp& g : plan.gemm_ops) {
    if (g.owner != rank) continue;
    exec_gemm(world, frame, ap, g, contended, report);
    // The cell is complete: snapshot it before polling for faults, so a
    // crash surfacing at this boundary never re-executes finished work.
    if (ft != nullptr && ft->on_gemm_done) ft->on_gemm_done(g.bi, g.bj);
    world.fault_check();
  }
}

/// Executes one k-chunk of a plan DGEMM (pipelined scheduler only):
/// numerically C += A[:, k0:k1) * B[k0:k1, :]. The chunk is charged its
/// pro-rata share of the *whole* kernel invocation's modeled cost `full` —
/// the chunks are slices of one kernel call, so their total matches the
/// eager scheduler's charge exactly and the split changes what the
/// broadcasts can hide, never the computation time itself.
void exec_gemm_chunk(sgmpi::Comm& world, const Frame& frame,
                     const device::AbstractProcessor& ap, const GemmOp& g,
                     const GemmChunk& ch, const device::KernelCost& full,
                     bool contended, RankReport& report) {
  const partition::PartitionSpec& spec = frame.spec;
  const std::int64_t h = spec.subph[static_cast<std::size_t>(g.bi)];
  const std::int64_t w = spec.subpw[static_cast<std::size_t>(g.bj)];
  const std::int64_t kc = ch.k1 - ch.k0;

  if (frame.data != nullptr) {
    const partition::Rect& cr = frame.data->c_rect();
    const std::int64_t wa_row0 =
        frame.roff[static_cast<std::size_t>(g.bi)] - frame.wa_base;
    const std::int64_t wb_col0 =
        frame.coff[static_cast<std::size_t>(g.bj)] - frame.wb_base;
    const util::MatrixView cv = frame.data->c();
    double* cptr = cv.data() +
                   (frame.roff[static_cast<std::size_t>(g.bi)] - cr.row0) *
                       cv.ld() +
                   (frame.coff[static_cast<std::size_t>(g.bj)] - cr.col0);
    // run_gemm accumulates (beta = 1); its returned cost describes a
    // standalone (h, w, kc) kernel and is discarded in favour of `full`'s
    // pro-rata share.
    // Same cross-rank identity as exec_gemm, restricted to the chunk's
    // k-range [k0, k1) — which the tag must therefore include.
    const std::uint64_t wb_key = blas::pack_tag(
        {world.context_uid(), kSummagenPackTag,
         static_cast<std::uint64_t>(spec.n),
         static_cast<std::uint64_t>(ch.k0),
         static_cast<std::uint64_t>(kc),
         static_cast<std::uint64_t>(
             frame.coff[static_cast<std::size_t>(g.bj)]),
         static_cast<std::uint64_t>(w)});
    ap.run_gemm(h, w, kc, frame.wa.row(wa_row0) + ch.k0, frame.wa.ld(),
                frame.wb.row(ch.k0) + wb_col0, frame.wb.ld(), cptr, cv.ld(),
                contended, wb_key);
  }

  const double share =
      static_cast<double>(kc) / static_cast<double>(spec.n);
  const double slow = world.compute_slowdown();
  const double compute_s = full.compute_s * share * slow;
  const double transfer_s = full.transfer_s * share * slow;

  auto& clk = world.clock();
  const double t0 = clk.now();
  clk.advance_compute(compute_s);
  if (world.events().enabled()) {
    world.events().record(
        {world.world_rank(), trace::EventKind::kCompute, t0, clk.now(), 0,
         blas::gemm_flops(h, w, kc),
         "subp(" + std::to_string(g.bi) + "," + std::to_string(g.bj) +
             ")[" + std::to_string(ch.k0) + ":" + std::to_string(ch.k1) +
             ")"});
  }
  if (transfer_s > 0.0) {
    const double t1 = clk.now();
    clk.advance_compute(transfer_s);
    if (world.events().enabled()) {
      world.events().record({world.world_rank(), trace::EventKind::kTransfer,
                             t1, clk.now(),
                             full.transferred_bytes * kc / spec.n, 0,
                             "staging"});
    }
  }

  ++report.gemm_calls;
  report.flops += blas::gemm_flops(h, w, kc);
  report.kernel_compute_s += compute_s;
  report.kernel_transfer_s += transfer_s;
}

/// Overlapped schedule: broadcasts are posted non-blocking (in the same
/// eager global order, so subgroup members agree) and completed lazily,
/// just before the first DGEMM chunk that reads their payload. Everything
/// posted but not yet completed rides the virtual communication lane under
/// the running chunks — the overlap win.
///
/// Deadlock freedom: every rank posts its operations in the same global
/// order and completes them in that same order. Consider the smallest
/// plan index any rank blocks on: every other member of that operation has
/// either already completed it (so it posted it) or is blocked at an index
/// >= it (so it posted everything through it) or is still computing and
/// will reach it — so the wait always terminates.
void run_pipelined(sgmpi::Comm& world, const Frame& frame,
                   const device::AbstractProcessor& ap,
                   const ExecutionPlan& plan, bool contended,
                   const SummaGenOptions& options, const FtContext* ft,
                   RankReport& report) {
  const int rank = world.rank();

  for (const CopyOp& op : plan.copy_ops) {
    const int owner = frame.spec.owner(op.bi, op.bj);
    if (owner == rank) exec_copy(frame, op);
  }

  // My operations, tagged with their global plan index (what GemmChunk::dep
  // refers to). Posting keeps the eager global order.
  struct MyOp {
    const CommOp* op;
    int seq;
  };
  std::vector<MyOp> ops;
  for (std::size_t i = 0; i < plan.comm_ops.size(); ++i) {
    const CommOp& op = plan.comm_ops[i];
    if (std::find(op.owners.begin(), op.owners.end(), rank) !=
        op.owners.end()) {
      ops.push_back({&op, static_cast<int>(i)});
    }
  }

  // One outstanding entry per posted broadcast. The panel payload needs no
  // local staging: completion copies straight from the root's in-place view
  // of the global operand into this rank's WA/WB window, so the steady
  // state of the pipeline allocates nothing.
  struct Pending {
    sgmpi::Request request;
    sgmpi::Comm group;
    const CommOp* op;
  };
  std::deque<Pending> pending;
  const std::size_t depth =
      options.overlap_depth <= 0
          ? std::numeric_limits<std::size_t>::max()
          : static_cast<std::size_t>(options.overlap_depth);
  std::size_t next_post = 0;

  auto post_one = [&] {
    const CommOp& op = *ops[next_post++].op;
    sgmpi::Comm group = world.subgroup(op.owners);
    Pending p{sgmpi::Request{}, group, &op};
    if (frame.data == nullptr) {
      p.request = group.ibcast_bytes(nullptr, op.bytes, op.root);
    } else if (op.owner == rank) {
      p.request =
          group.ibcast_panel(frame.owned_src(op), frame.dest(op), op.root);
    } else {
      p.request = group.ibcast_panel({}, frame.dest(op), op.root);
    }
    ++report.bcasts;
    report.bcast_bytes += op.bytes;
    pending.push_back(std::move(p));
  };

  auto complete_one = [&] {
    Pending p = std::move(pending.front());
    pending.pop_front();
    // The wait itself lands the panel in WA/WB (receivers gather from the
    // root's view, the root stores its own window).
    report.mpi_time_s += p.group.wait(p.request);
  };

  std::size_t next_complete = 0;
  auto complete_through = [&](int dep) {
    while (next_complete < ops.size() && ops[next_complete].seq <= dep) {
      while (next_post <= next_complete) post_one();
      complete_one();
      ++next_complete;
    }
    while (next_post < ops.size() && pending.size() < depth) post_one();
  };

  for (const GemmOp& g : plan.gemm_ops) {
    if (g.owner != rank) continue;
    const std::int64_t h = frame.spec.subph[static_cast<std::size_t>(g.bi)];
    const std::int64_t w = frame.spec.subpw[static_cast<std::size_t>(g.bj)];
    const device::KernelCost full =
        ap.kernel_cost(h, w, frame.spec.n, contended);
    for (const GemmChunk& ch : g.chunks) {
      complete_through(ch.dep);
      exec_gemm_chunk(world, frame, ap, g, ch, full, contended, report);
      world.fault_check();
    }
    if (ft != nullptr && ft->on_gemm_done) ft->on_gemm_done(g.bi, g.bj);
  }
  complete_through(std::numeric_limits<int>::max());  // drain stragglers
}

}  // namespace

RankReport summagen_rank(sgmpi::Comm& world,
                         const partition::PartitionSpec& spec,
                         const device::AbstractProcessor& ap, LocalData* data,
                         bool contended, const SummaGenOptions& options,
                         const FtContext* ft) {
  spec.validate(world.size());
  if (data != nullptr && !data->numeric()) {
    throw std::invalid_argument(
        "summagen_rank: pass nullptr for the modeled plane");
  }
  const int rank = world.rank();
  const auto roff = spec.row_offsets();
  const auto coff = spec.col_offsets();
  const auto [myi, block_lda] = spec.row_span(rank);
  const auto [myj, block_ldb] = spec.col_span(rank);

  RankReport report;

  // The WA/WB workspaces come from the process-wide buffer pool and are
  // deliberately not zeroed: the plan writes every region a DGEMM reads
  // (all cells of my block row land in WA and of my block column in WB
  // before any chunk touches them) — including under recovery filtering,
  // which keeps an A/B op whenever any surviving DGEMM reads its
  // row/column.
  util::PooledBuffer wa_store, wb_store;
  util::MatrixView wa, wb;
  if (data != nullptr) {
    const std::int64_t wa_rows =
        roff[static_cast<std::size_t>(myi + block_lda)] -
        roff[static_cast<std::size_t>(myi)];
    const std::int64_t wb_cols =
        coff[static_cast<std::size_t>(myj + block_ldb)] -
        coff[static_cast<std::size_t>(myj)];
    wa_store = util::BufferPool::instance().acquire(wa_rows * spec.n);
    wb_store = util::BufferPool::instance().acquire(spec.n * wb_cols);
    wa = util::MatrixView(wa_store.data(), wa_rows, spec.n, spec.n);
    wb = util::MatrixView(wb_store.data(), spec.n, wb_cols, wb_cols);
  }

  // Recovery phases with completed cells force the eager scheduler:
  // filtering the plan invalidates the pipelined chunk->broadcast
  // dependency indices, and recovery correctness is scheduler-independent.
  SummaGenOptions effective = options;
  const bool filtering =
      ft != nullptr && ft->done != nullptr && !ft->done->empty();
  if (filtering) effective.scheduler = Scheduler::kEager;

  ExecutionPlan plan = build_plan(spec, effective);
  if (filtering) filter_done(plan, *ft->done);
  const Frame frame(spec, rank, data, wa, wb);
  const double hidden0 = world.clock().hidden_comm_seconds();

  switch (effective.scheduler) {
    case Scheduler::kEager:
      run_eager(world, frame, ap, plan, contended, ft, report);
      break;
    case Scheduler::kPipelined:
      run_pipelined(world, frame, ap, plan, contended, effective, ft, report);
      break;
  }

  report.hidden_comm_s = world.clock().hidden_comm_seconds() - hidden0;
  return report;
}

}  // namespace summagen::core

#include "src/core/summagen.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/blas/pack_cache.hpp"
#include "src/core/plan.hpp"
#include "src/core/taskgraph/executor.hpp"
#include "src/core/taskgraph/taskgraph.hpp"
#include "src/pool/pool.hpp"
#include "src/util/accounting.hpp"
#include "src/util/buffer_pool.hpp"
#include "src/util/matrix_view.hpp"

namespace summagen::core {

const char* to_string(Scheduler scheduler) {
  switch (scheduler) {
    case Scheduler::kEager:
      return "eager";
    case Scheduler::kPipelined:
      return "pipelined";
    case Scheduler::kTaskGraph:
      return "taskgraph";
  }
  return "?";
}

namespace {

/// Scheduler constant folded into pack tags (disjoint from the SUMMA and
/// 2.5D key spaces even for identical geometry).
constexpr std::uint64_t kSummagenPackTag = 0x5347454eull;  // "SGEN"

/// Process-wide cache of the rank-invariant (plan, graph) pair. Every rank
/// derives the same ExecutionPlan and TaskGraph from (spec,
/// bcast_panel_rows) — build_plan is deterministic — so the ranks of a run
/// share one immutable copy instead of each materialising its own. With
/// thousands of modeled-engine fibers alive at once, per-rank copies cost
/// gigabytes; the shared pair costs one rank's worth.
struct SharedSchedule {
  partition::PartitionSpec spec;
  std::int64_t panel_rows = 0;
  std::shared_ptr<const ExecutionPlan> plan;
  std::shared_ptr<const taskgraph::TaskGraph> graph;
};

std::mutex& schedule_mutex() {
  static std::mutex mu;
  return mu;
}

std::vector<SharedSchedule>& schedule_cache() {
  static std::vector<SharedSchedule>& cache = *[] {
    auto* storage = new std::vector<SharedSchedule>();
    sgpool::Pool::add_quiescent_hook([storage] {
      std::lock_guard<std::mutex> lock(schedule_mutex());
      storage->clear();
    });
    return storage;
  }();
  return cache;
}

bool same_layout(const partition::PartitionSpec& a,
                 const partition::PartitionSpec& b) {
  return a.n == b.n && a.subplda == b.subplda && a.subpldb == b.subpldb &&
         a.subph == b.subph && a.subpw == b.subpw && a.subp == b.subp;
}

SharedSchedule shared_schedule(const partition::PartitionSpec& spec,
                               const SummaGenOptions& options) {
  // bcast_panel_rows is the only option the plan reads (plan.cpp).
  const std::int64_t panel_rows = options.bcast_panel_rows;
  std::lock_guard<std::mutex> lock(schedule_mutex());
  auto& cache = schedule_cache();
  for (const SharedSchedule& entry : cache) {
    if (entry.panel_rows == panel_rows && same_layout(entry.spec, spec)) {
      util::record_sched_lookup(/*hit=*/true);
      return entry;
    }
  }
  util::record_sched_lookup(/*hit=*/false);
  SharedSchedule entry;
  entry.spec = spec;
  entry.panel_rows = panel_rows;
  auto plan = std::make_shared<ExecutionPlan>(build_plan(spec, options));
  entry.graph = std::make_shared<const taskgraph::TaskGraph>(
      taskgraph::build_summagen_graph(spec, *plan));
  entry.plan = std::move(plan);
  // Entries are dropped at the pool's quiescent point (once per run);
  // recovery phases add one entry per re-partition. The FIFO cap covers
  // direct summagen_rank callers that never pass a quiescent point —
  // in-flight shared_ptrs keep evicted entries alive.
  constexpr std::size_t kMaxEntries = 16;
  if (cache.size() == kMaxEntries) cache.erase(cache.begin());
  cache.push_back(entry);
  return entry;
}

/// Rank-invariant geometry shared by every plan step executor.
struct Frame {
  const partition::PartitionSpec& spec;
  LocalData* data;      ///< nullptr on the modeled plane
  util::MatrixView wa;  ///< my_rows x n workspace (empty on modeled plane)
  util::MatrixView wb;  ///< n x my_cols workspace (empty on modeled plane)
  std::vector<std::int64_t> roff;
  std::vector<std::int64_t> coff;
  std::int64_t wa_base = 0;  ///< first matrix row covered by WA
  std::int64_t wb_base = 0;  ///< first matrix column covered by WB
  /// Pack-tag namespace: the run's context uid, or the caller-asserted
  /// SummaGenOptions::pack_namespace when set (cross-job panel reuse).
  std::uint64_t pack_ns = 0;

  Frame(const partition::PartitionSpec& spec_in, int rank, LocalData* data_in,
        util::MatrixView wa_in, util::MatrixView wb_in,
        std::uint64_t pack_ns_in)
      : spec(spec_in),
        data(data_in),
        wa(wa_in),
        wb(wb_in),
        roff(spec_in.row_offsets()),
        coff(spec_in.col_offsets()),
        pack_ns(pack_ns_in) {
    const auto [myi, block_lda] = spec.row_span(rank);
    const auto [myj, block_ldb] = spec.col_span(rank);
    (void)block_lda;
    (void)block_ldb;
    wa_base = roff[static_cast<std::size_t>(myi)];
    wb_base = coff[static_cast<std::size_t>(myj)];
  }

  /// Destination of panel rows [op.p0, op.p0 + op.rows) of `op`'s payload
  /// inside WA (A ops) or WB (B ops).
  util::MatrixView dest(const CommOp& op) const {
    if (op.is_a) {
      const std::int64_t row0 =
          roff[static_cast<std::size_t>(op.bi)] - wa_base + op.p0;
      return wa.subview(row0, coff[static_cast<std::size_t>(op.bj)], op.rows,
                        op.width);
    }
    const std::int64_t col0 =
        coff[static_cast<std::size_t>(op.bj)] - wb_base;
    return wb.subview(roff[static_cast<std::size_t>(op.bi)] + op.p0, col0,
                      op.rows, op.width);
  }

  /// The owner's payload for `op`, viewed in place inside the global
  /// operand (panel rows [op.p0, op.p0 + op.rows) of the owned part).
  util::ConstMatrixView owned_src(const CommOp& op) const {
    const util::ConstMatrixView part =
        op.is_a ? data->a_part(op.bi, op.bj) : data->b_part(op.bi, op.bj);
    return part.subview(op.p0, 0, op.rows, op.width);
  }
};

/// Executes a single-owner local copy (zero virtual cost).
void exec_copy(const Frame& frame, const CopyOp& op) {
  if (frame.data == nullptr) return;
  const std::int64_t h = frame.spec.subph[static_cast<std::size_t>(op.bi)];
  const std::int64_t w = frame.spec.subpw[static_cast<std::size_t>(op.bj)];
  if (op.is_a) {
    const std::int64_t row0 =
        frame.roff[static_cast<std::size_t>(op.bi)] - frame.wa_base;
    util::copy_view(frame.data->a_part(op.bi, op.bj),
                    frame.wa.subview(
                        row0, frame.coff[static_cast<std::size_t>(op.bj)], h,
                        w));
  } else {
    const std::int64_t col0 =
        frame.coff[static_cast<std::size_t>(op.bj)] - frame.wb_base;
    util::copy_view(frame.data->b_part(op.bi, op.bj),
                    frame.wb.subview(
                        frame.roff[static_cast<std::size_t>(op.bi)], col0, h,
                        w));
  }
}

/// Executes one local DGEMM of the plan. When `ft` carries a drift profile
/// the modeled time additionally scales by the drift factor sampled at the
/// quantum's start; `obs` (optional) receives the step's predicted
/// (pre-drift) and observed durations for the drift detector.
void exec_gemm(sgmpi::Comm& world, const Frame& frame,
               const device::AbstractProcessor& ap, const GemmOp& g,
               bool contended, RankReport& report, const FtContext* ft,
               trace::StepSample* obs) {
  const partition::PartitionSpec& spec = frame.spec;
  const std::int64_t h = spec.subph[static_cast<std::size_t>(g.bi)];
  const std::int64_t w = spec.subpw[static_cast<std::size_t>(g.bj)];

  device::KernelCost cost;
  if (frame.data == nullptr) {
    cost = ap.kernel_cost(h, w, spec.n, contended);
  } else {
    const partition::Rect& cr = frame.data->c_rect();
    const std::int64_t wa_row0 =
        frame.roff[static_cast<std::size_t>(g.bi)] - frame.wa_base;
    const std::int64_t wb_col0 =
        frame.coff[static_cast<std::size_t>(g.bj)] - frame.wb_base;
    const util::MatrixView cv = frame.data->c();
    double* cptr = cv.data() +
                   (frame.roff[static_cast<std::size_t>(g.bi)] - cr.row0) *
                       cv.ld() +
                   (frame.coff[static_cast<std::size_t>(g.bj)] - cr.col0);
    // The B operand is columns [coff[bj], coff[bj]+w) of global B over the
    // full k axis — bit-identical on every rank computing a cell of
    // sub-partition column bj (different WB buffers and ld, same values),
    // so tag it for the blas pack cache. The partition epoch namespaces the
    // tag per re-partition phase: a pre-re-partition pack can never serve a
    // post-re-partition lookup.
    const std::uint64_t wb_key = blas::pack_tag(
        {frame.pack_ns, kSummagenPackTag,
         ft != nullptr ? ft->partition_epoch : 0,
         static_cast<std::uint64_t>(spec.n), 0,
         static_cast<std::uint64_t>(spec.n),
         static_cast<std::uint64_t>(
             frame.coff[static_cast<std::size_t>(g.bj)]),
         static_cast<std::uint64_t>(w)});
    cost = ap.run_gemm(h, w, spec.n, frame.wa.row(wa_row0), frame.wa.ld(),
                       frame.wb.data() + wb_col0, frame.wb.ld(), cptr,
                       cv.ld(), contended, wb_key);
  }

  // A planned rank-slowdown fault scales the device's modeled time; the
  // factor is exactly 1.0 with no fault plan, keeping the charge
  // bit-identical.
  const double slow = world.compute_slowdown();
  cost.compute_s *= slow;
  cost.transfer_s *= slow;

  auto& clk = world.clock();
  const double t0 = clk.now();
  // Live drift stretches the modeled quantum on top of the static model
  // (slowdown faults included); the detector compares the two.
  const double drift = ft != nullptr && ft->drift_factor
                           ? ft->drift_factor(t0)
                           : 1.0;
  if (obs != nullptr) {
    obs->predicted_s = cost.total_s();
    obs->observed_s = cost.total_s() * drift;
    obs->vtime = t0;
  }
  cost.compute_s *= drift;
  cost.transfer_s *= drift;
  clk.advance_compute(cost.compute_s);
  if (world.events().enabled()) {
    world.events().record({world.world_rank(), trace::EventKind::kCompute,
                           t0, clk.now(), 0, blas::gemm_flops(h, w, spec.n),
                           "subp(" + std::to_string(g.bi) + "," +
                               std::to_string(g.bj) + ")"});
  }
  if (cost.transfer_s > 0.0) {
    // Host<->device staging: part of the kernel (and of Fig. 6b's
    // computation time), but drawing communication power.
    const double t1 = clk.now();
    clk.advance_compute(cost.transfer_s);
    if (world.events().enabled()) {
      world.events().record({world.world_rank(), trace::EventKind::kTransfer,
                             t1, clk.now(), cost.transferred_bytes, 0,
                             "staging"});
    }
  }

  ++report.gemm_calls;
  report.flops += blas::gemm_flops(h, w, spec.n);
  report.kernel_compute_s += cost.compute_s;
  report.kernel_transfer_s += cost.transfer_s;
}

/// Executes one k-chunk of a plan DGEMM (chunk-granular schedulers):
/// numerically C += A[:, k0:k1) * B[k0:k1, :]. The chunk is charged its
/// pro-rata share of the *whole* kernel invocation's modeled cost `full` —
/// the chunks are slices of one kernel call, so their total matches the
/// eager scheduler's charge exactly and the split changes what the
/// broadcasts can hide, never the computation time itself.
void exec_gemm_chunk(sgmpi::Comm& world, const Frame& frame,
                     const device::AbstractProcessor& ap, const GemmOp& g,
                     const GemmChunk& ch, const device::KernelCost& full,
                     bool contended, RankReport& report, const FtContext* ft,
                     trace::StepSample* obs) {
  const partition::PartitionSpec& spec = frame.spec;
  const std::int64_t h = spec.subph[static_cast<std::size_t>(g.bi)];
  const std::int64_t w = spec.subpw[static_cast<std::size_t>(g.bj)];
  const std::int64_t kc = ch.k1 - ch.k0;

  if (frame.data != nullptr) {
    const partition::Rect& cr = frame.data->c_rect();
    const std::int64_t wa_row0 =
        frame.roff[static_cast<std::size_t>(g.bi)] - frame.wa_base;
    const std::int64_t wb_col0 =
        frame.coff[static_cast<std::size_t>(g.bj)] - frame.wb_base;
    const util::MatrixView cv = frame.data->c();
    double* cptr = cv.data() +
                   (frame.roff[static_cast<std::size_t>(g.bi)] - cr.row0) *
                       cv.ld() +
                   (frame.coff[static_cast<std::size_t>(g.bj)] - cr.col0);
    // run_gemm accumulates (beta = 1); its returned cost describes a
    // standalone (h, w, kc) kernel and is discarded in favour of `full`'s
    // pro-rata share.
    // Same cross-rank identity as exec_gemm, restricted to the chunk's
    // k-range [k0, k1) — which the tag must therefore include.
    const std::uint64_t wb_key = blas::pack_tag(
        {frame.pack_ns, kSummagenPackTag,
         ft != nullptr ? ft->partition_epoch : 0,
         static_cast<std::uint64_t>(spec.n),
         static_cast<std::uint64_t>(ch.k0),
         static_cast<std::uint64_t>(kc),
         static_cast<std::uint64_t>(
             frame.coff[static_cast<std::size_t>(g.bj)]),
         static_cast<std::uint64_t>(w)});
    ap.run_gemm(h, w, kc, frame.wa.row(wa_row0) + ch.k0, frame.wa.ld(),
                frame.wb.row(ch.k0) + wb_col0, frame.wb.ld(), cptr, cv.ld(),
                contended, wb_key);
  }

  const double share =
      static_cast<double>(kc) / static_cast<double>(spec.n);
  const double slow = world.compute_slowdown();
  auto& clk = world.clock();
  const double t0 = clk.now();
  const double drift = ft != nullptr && ft->drift_factor
                           ? ft->drift_factor(t0)
                           : 1.0;
  if (obs != nullptr) {
    obs->predicted_s = (full.compute_s + full.transfer_s) * share * slow;
    obs->observed_s = obs->predicted_s * drift;
    obs->vtime = t0;
  }
  const double compute_s = full.compute_s * share * slow * drift;
  const double transfer_s = full.transfer_s * share * slow * drift;
  clk.advance_compute(compute_s);
  if (world.events().enabled()) {
    world.events().record(
        {world.world_rank(), trace::EventKind::kCompute, t0, clk.now(), 0,
         blas::gemm_flops(h, w, kc),
         "subp(" + std::to_string(g.bi) + "," + std::to_string(g.bj) +
             ")[" + std::to_string(ch.k0) + ":" + std::to_string(ch.k1) +
             ")"});
  }
  if (transfer_s > 0.0) {
    const double t1 = clk.now();
    clk.advance_compute(transfer_s);
    if (world.events().enabled()) {
      world.events().record({world.world_rank(), trace::EventKind::kTransfer,
                             t1, clk.now(),
                             full.transferred_bytes * kc / spec.n, 0,
                             "staging"});
    }
  }

  ++report.gemm_calls;
  report.flops += blas::gemm_flops(h, w, kc);
  report.kernel_compute_s += compute_s;
  report.kernel_transfer_s += transfer_s;
}

}  // namespace

RankReport summagen_rank(sgmpi::Comm& world,
                         const partition::PartitionSpec& spec,
                         const device::AbstractProcessor& ap, LocalData* data,
                         bool contended, const SummaGenOptions& options,
                         const FtContext* ft) {
  spec.validate(world.size());
  if (data != nullptr && !data->numeric()) {
    throw std::invalid_argument(
        "summagen_rank: pass nullptr for the modeled plane");
  }
  const int rank = world.rank();
  const auto roff = spec.row_offsets();
  const auto coff = spec.col_offsets();
  const auto [myi, block_lda] = spec.row_span(rank);
  const auto [myj, block_ldb] = spec.col_span(rank);

  RankReport report;

  // The WA/WB workspaces come from the process-wide buffer pool and are
  // deliberately not zeroed: the plan writes every region a DGEMM reads
  // (all cells of my block row land in WA and of my block column in WB
  // before any chunk touches them) — including under recovery filtering,
  // which keeps an A/B op whenever any surviving DGEMM reads its
  // row/column.
  util::PooledBuffer wa_store, wb_store;
  util::MatrixView wa, wb;
  if (data != nullptr) {
    const std::int64_t wa_rows =
        roff[static_cast<std::size_t>(myi + block_lda)] -
        roff[static_cast<std::size_t>(myi)];
    const std::int64_t wb_cols =
        coff[static_cast<std::size_t>(myj + block_ldb)] -
        coff[static_cast<std::size_t>(myj)];
    wa_store = util::BufferPool::instance().acquire(wa_rows * spec.n);
    wb_store = util::BufferPool::instance().acquire(spec.n * wb_cols);
    wa = util::MatrixView(wa_store.data(), wa_rows, spec.n, spec.n);
    wb = util::MatrixView(wb_store.data(), spec.n, wb_cols, wb_cols);
  }

  // Fetch the rank-invariant plan + dependency task graph (shared across
  // ranks — see SharedSchedule) and — on recovery phases — prune a private
  // copy of the subgraph that already ran. Node ids survive pruning, so
  // every scheduler remains a legal schedule of the un-run subgraph;
  // recovery is re-scheduling, not a retry path.
  const SharedSchedule sched = shared_schedule(spec, options);
  const ExecutionPlan& plan = *sched.plan;
  taskgraph::TaskGraph pruned;
  const taskgraph::TaskGraph* graph = sched.graph.get();
  if (ft != nullptr && ft->done != nullptr && !ft->done->empty()) {
    pruned = *sched.graph;
    taskgraph::prune_completed(pruned, plan, *ft->done);
    graph = &pruned;
  }

  const Frame frame(spec, rank, data, wa, wb,
                    options.pack_namespace != 0 ? options.pack_namespace
                                                : world.context_uid());
  const double hidden0 = world.clock().hidden_comm_seconds();

  // Whole-kernel costs per GemmOp, computed on first use: chunk nodes are
  // charged pro-rata shares of the single kernel invocation the eager
  // schedule would make, so the total computation time is
  // schedule-invariant. Sparse: a rank only ever prices its own GemmOps,
  // so a dense per-rank vector over all of them would be O(p^2) process-
  // wide under the modeled engine.
  std::map<std::size_t, device::KernelCost> full;
  auto full_cost = [&](std::size_t gi) -> const device::KernelCost& {
    auto it = full.find(gi);
    if (it == full.end()) {
      const GemmOp& g = plan.gemm_ops[gi];
      it = full.emplace(gi, ap.kernel_cost(
                                spec.subph[static_cast<std::size_t>(g.bi)],
                                spec.subpw[static_cast<std::size_t>(g.bj)],
                                spec.n, contended))
               .first;
    }
    return it->second;
  };

  // Subgroup communicators of posted-but-uncompleted broadcasts, FIFO in
  // posting order — the executor completes in that same order.
  std::deque<sgmpi::Comm> posted_groups;

  // Set when the drift detector (ft->on_step) confirms: the rank sheds its
  // remaining compute — no kernel, no clock charge, no completion snapshot
  // — but still executes its full communication schedule, so every peer's
  // collectives complete against live payloads. The kDrift event is raised
  // only after the graph finishes and surfaces to peers at the ft_commit
  // gate; the shed cells redistribute in the next phase.
  bool shed = false;

  taskgraph::ExecHooks hooks;
  hooks.run_local = [&](const taskgraph::TaskNode& node) {
    if (node.kind == taskgraph::NodeKind::kCopy) {
      exec_copy(frame, plan.copy_ops[static_cast<std::size_t>(node.payload)]);
      return;
    }
    if (shed) return;
    const GemmOp& g = plan.gemm_ops[static_cast<std::size_t>(node.payload)];
    const GemmChunk& ch = g.chunks[static_cast<std::size_t>(node.aux)];
    trace::StepSample obs;
    exec_gemm_chunk(world, frame, ap, g, ch,
                    full_cost(static_cast<std::size_t>(node.payload)),
                    contended, report, ft, &obs);
    world.fault_check();
    if (node.aux + 1 == static_cast<int>(g.chunks.size()) && ft != nullptr &&
        ft->on_gemm_done) {
      ft->on_gemm_done(g.bi, g.bj);
    }
    if (ft != nullptr && ft->on_step && ft->on_step(obs)) shed = true;
  };
  // kProgram fuses each chunk chain into the historical single whole-op
  // kernel call — eager numeric results and virtual timing stay exact.
  hooks.run_fused = [&](const taskgraph::TaskNode& node, int /*nchunks*/) {
    if (shed) return;
    const GemmOp& g = plan.gemm_ops[static_cast<std::size_t>(node.payload)];
    trace::StepSample obs;
    exec_gemm(world, frame, ap, g, contended, report, ft, &obs);
    // The cell is complete: snapshot it before polling for faults, so a
    // crash surfacing at this boundary never re-executes finished work.
    if (ft != nullptr && ft->on_gemm_done) ft->on_gemm_done(g.bi, g.bj);
    world.fault_check();
    if (ft != nullptr && ft->on_step && ft->on_step(obs)) shed = true;
  };
  hooks.run_comm = [&](const taskgraph::TaskNode& node) {
    const CommOp& op = plan.comm_ops[static_cast<std::size_t>(node.payload)];
    sgmpi::Comm group = world.subgroup(op.owners);
    if (frame.data == nullptr) {
      report.mpi_time_s += group.bcast_bytes(nullptr, op.bytes, op.root);
    } else if (op.owner == rank) {
      // The owner broadcasts its sub-partition viewed in place inside the
      // global operand; the transport lands its own copy in WA/WB too.
      report.mpi_time_s +=
          group.bcast_panel(frame.owned_src(op), frame.dest(op), op.root);
    } else {
      // Receivers copy straight from the root's view into WA/WB — no
      // contiguous staging buffer on either side.
      report.mpi_time_s += group.bcast_panel({}, frame.dest(op), op.root);
    }
    ++report.bcasts;
    report.bcast_bytes += op.bytes;
  };
  hooks.post_comm = [&](const taskgraph::TaskNode& node) {
    const CommOp& op = plan.comm_ops[static_cast<std::size_t>(node.payload)];
    sgmpi::Comm group = world.subgroup(op.owners);
    sgmpi::Request request;
    if (frame.data == nullptr) {
      request = group.ibcast_bytes(nullptr, op.bytes, op.root);
    } else if (op.owner == rank) {
      request =
          group.ibcast_panel(frame.owned_src(op), frame.dest(op), op.root);
    } else {
      request = group.ibcast_panel({}, frame.dest(op), op.root);
    }
    ++report.bcasts;
    report.bcast_bytes += op.bytes;
    posted_groups.push_back(std::move(group));
    return request;
  };
  hooks.complete_comm = [&](const taskgraph::TaskNode& /*node*/,
                            sgmpi::Request& request) {
    sgmpi::Comm group = std::move(posted_groups.front());
    posted_groups.pop_front();
    // The wait itself lands the panel in WA/WB (receivers gather from the
    // root's view, the root stores its own window).
    report.mpi_time_s += group.wait(request);
  };

  taskgraph::run_graph(*graph, rank,
                       taskgraph::schedule_for(options.scheduler),
                       options.overlap_depth, hooks);

  // With the communication schedule fully executed (no peer is mid-
  // collective against this rank's buffers), a confirmed drift unwinds via
  // the standard fault path: peers see kDrift at the ft_commit gate.
  if (shed) world.raise_drift();

  report.hidden_comm_s = world.clock().hidden_comm_seconds() - hidden0;
  return report;
}

}  // namespace summagen::core

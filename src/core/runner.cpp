#include "src/core/runner.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "src/core/reference.hpp"
#include "src/util/rng.hpp"

namespace summagen::core {

std::vector<device::SpeedFunction> default_fpm_models(
    const device::Platform& platform, std::int64_t n,
    device::Interpolation interp) {
  // The largest zone edge is n (one processor owning everything); profile a
  // little past it so interpolation, not clamping, covers the working range.
  const double hi = std::max<double>(256.0, static_cast<double>(n) * 1.05);
  const auto grid = device::profile_grid(64.0, hi, 48);
  return platform.profiles(grid, /*contended=*/true, interp);
}

std::vector<double> default_cpm_speeds(const device::Platform& platform) {
  // Mean contended speeds over the zone-edge range corresponding to the
  // paper's constant problem-size range (N in [25600, 35840] => zone edges
  // roughly in [14000, 22000]).
  return platform.constant_relative_speeds(14000.0, 22000.0);
}

std::vector<std::int64_t> compute_areas(const ExperimentConfig& config) {
  const std::int64_t total = config.n * config.n;
  if (!config.preset_areas.empty()) {
    if (static_cast<int>(config.preset_areas.size()) !=
        config.platform.nprocs()) {
      throw std::invalid_argument(
          "run_pmm: preset_areas size differs from platform processor count");
    }
    return config.preset_areas;
  }
  if (config.regime == Regime::kConstant) {
    std::vector<double> speeds = config.cpm_speeds;
    if (speeds.empty()) speeds = default_cpm_speeds(config.platform);
    if (static_cast<int>(speeds.size()) != config.platform.nprocs()) {
      throw std::invalid_argument(
          "run_pmm: cpm_speeds size differs from platform processor count");
    }
    return partition::partition_areas_cpm(total, speeds);
  }
  std::vector<device::SpeedFunction> models = config.fpm_models;
  if (models.empty()) {
    models = default_fpm_models(config.platform, config.n);
  }
  if (static_cast<int>(models.size()) != config.platform.nprocs()) {
    throw std::invalid_argument(
        "run_pmm: fpm_models size differs from platform processor count");
  }
  return partition::partition_areas_fpm(config.n, models, config.fpm_options)
      .areas;
}

ExperimentResult run_pmm(const ExperimentConfig& config) {
  if (config.n <= 0) throw std::invalid_argument("run_pmm: n <= 0");
  const int p = config.platform.nprocs();
  if (p < 1) throw std::invalid_argument("run_pmm: empty platform");
  if (config.numeric && config.n > 8192) {
    throw std::invalid_argument(
        "run_pmm: numeric plane beyond n=8192 is a mistake; use the modeled "
        "plane for paper-scale sweeps");
  }

  ExperimentResult result;
  if (config.preset_spec.n > 0) {
    if (config.preset_spec.n != config.n) {
      throw std::invalid_argument("run_pmm: preset_spec.n != n");
    }
    config.preset_spec.validate(p);
    result.spec = config.preset_spec;
    for (int r = 0; r < p; ++r) {
      result.areas.push_back(result.spec.area_of(r));
    }
  } else {
    result.areas = compute_areas(config);
    result.spec =
        partition::build_shape(config.shape, config.n, result.areas,
                               config.granularity);
  }
  result.total_half_perimeter = result.spec.total_half_perimeter();

  device::Platform platform = config.platform;
  if (config.noise_sigma > 0.0) {
    for (std::size_t r = 0; r < platform.devices.size(); ++r) {
      platform.devices[r].temporal_jitter_sigma = config.noise_sigma;
      platform.devices[r].temporal_jitter_seed =
          util::derive_seed(config.noise_seed, r);
    }
  }
  const auto processors = platform.processors(config.kernel);

  sgmpi::Config mpi_config;
  mpi_config.nranks = p;
  mpi_config.link = config.platform.mpi_link;
  mpi_config.node_of = config.platform.node_of;
  mpi_config.internode_link = config.platform.internode_link;
  mpi_config.record_events = config.record_events;
  sgmpi::Runtime runtime(mpi_config);

  // Numeric plane: build the global inputs and each rank's local store.
  util::Matrix a, b;
  std::vector<std::unique_ptr<LocalData>> locals(
      static_cast<std::size_t>(p));
  if (config.numeric) {
    a = util::Matrix(config.n, config.n);
    b = util::Matrix(config.n, config.n);
    util::fill_random(a, util::derive_seed(config.seed, 1));
    util::fill_random(b, util::derive_seed(config.seed, 2));
    for (int r = 0; r < p; ++r) {
      locals[static_cast<std::size_t>(r)] =
          std::make_unique<LocalData>(result.spec, r, a, b);
    }
  }

  result.reports.resize(static_cast<std::size_t>(p));
  runtime.run([&](sgmpi::Comm& world) {
    const int r = world.rank();
    result.reports[static_cast<std::size_t>(r)] = summagen_rank(
        world, result.spec, processors[static_cast<std::size_t>(r)],
        locals[static_cast<std::size_t>(r)].get(), config.contended,
        config.summagen_options);
  });

  for (int r = 0; r < p; ++r) {
    const auto& clk = runtime.clock(r);
    result.rank_exec_s.push_back(clk.now());
    result.rank_comp_s.push_back(clk.compute_seconds());
    result.rank_comm_s.push_back(clk.comm_seconds());
    result.rank_idle_s.push_back(clk.idle_seconds());
    result.rank_hidden_s.push_back(clk.hidden_comm_seconds());
    result.exec_time_s = std::max(result.exec_time_s, clk.now());
    result.comp_time_s = std::max(result.comp_time_s, clk.compute_seconds());
    result.comm_time_s = std::max(result.comm_time_s, clk.comm_seconds());
    result.hidden_comm_time_s =
        std::max(result.hidden_comm_time_s, clk.hidden_comm_seconds());
  }
  const double n3 = static_cast<double>(config.n) *
                    static_cast<double>(config.n) *
                    static_cast<double>(config.n);
  result.tflops = 2.0 * n3 / result.exec_time_s / 1.0e12;

  if (config.record_events) {
    result.events = runtime.events().sorted();
    result.energy = energy::dynamic_energy_exact(
        result.events, config.platform, result.exec_time_s);
    result.has_energy = true;
  }

  if (config.numeric) {
    util::Matrix c(config.n, config.n);
    for (int r = 0; r < p; ++r) {
      locals[static_cast<std::size_t>(r)]->gather_c(result.spec, c);
    }
    const util::Matrix expected = reference_multiply(a, b);
    result.max_abs_error = util::Matrix::max_abs_diff(c, expected);
    result.verified = result.max_abs_error <= gemm_tolerance(config.n);
  }
  return result;
}

}  // namespace summagen::core

#include "src/core/runner.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "src/blas/fastmm.hpp"
#include "src/blas/pack_cache.hpp"
#include "src/core/recovery.hpp"
#include "src/core/reference.hpp"
#include "src/pool/pool.hpp"
#include "src/util/rng.hpp"

namespace summagen::core {

namespace {

/// Per-rank totals across all recovery phases of one fault-tolerant run.
void accumulate_report(RankReport& into, const RankReport& r) {
  into.bcasts += r.bcasts;
  into.bcast_bytes += r.bcast_bytes;
  into.mpi_time_s += r.mpi_time_s;
  into.gemm_calls += r.gemm_calls;
  into.flops += r.flops;
  into.kernel_compute_s += r.kernel_compute_s;
  into.kernel_transfer_s += r.kernel_transfer_s;
  into.hidden_comm_s += r.hidden_comm_s;
}

/// One execution phase of a fault-tolerant run: the distribution it ran
/// under, who participated, each participant's local store (numeric plane,
/// indexed by world rank) and the completed-cell set it started from.
struct Phase {
  partition::PartitionSpec spec;
  std::vector<int> members;  ///< surviving world ranks, ascending
  std::vector<std::unique_ptr<LocalData>> locals;
  CellSet done_at_start;
  std::int64_t redistributed = 0;
  /// Drift-triggered re-partitions already performed when this phase
  /// started: arms the detectors (budget) and sets their warmup backoff.
  int drift_rounds = 0;
};

}  // namespace

std::vector<device::SpeedFunction> default_fpm_models(
    const device::Platform& platform, std::int64_t n,
    device::Interpolation interp) {
  // The largest zone edge is n (one processor owning everything); profile a
  // little past it so interpolation, not clamping, covers the working range.
  const double hi = std::max<double>(256.0, static_cast<double>(n) * 1.05);
  const auto grid = device::profile_grid(64.0, hi, 48);
  return platform.profiles(grid, /*contended=*/true, interp);
}

std::vector<double> default_cpm_speeds(const device::Platform& platform) {
  // Mean contended speeds over the zone-edge range corresponding to the
  // paper's constant problem-size range (N in [25600, 35840] => zone edges
  // roughly in [14000, 22000]).
  return platform.constant_relative_speeds(14000.0, 22000.0);
}

std::vector<std::int64_t> compute_areas(const ExperimentConfig& config) {
  const std::int64_t total = config.n * config.n;
  if (!config.preset_areas.empty()) {
    if (static_cast<int>(config.preset_areas.size()) !=
        config.platform.nprocs()) {
      throw std::invalid_argument(
          "run_pmm: preset_areas size differs from platform processor count");
    }
    return config.preset_areas;
  }
  if (config.regime == Regime::kConstant) {
    std::vector<double> speeds = config.cpm_speeds;
    if (speeds.empty()) speeds = default_cpm_speeds(config.platform);
    if (static_cast<int>(speeds.size()) != config.platform.nprocs()) {
      throw std::invalid_argument(
          "run_pmm: cpm_speeds size differs from platform processor count");
    }
    return partition::partition_areas_cpm(total, speeds);
  }
  std::vector<device::SpeedFunction> models = config.fpm_models;
  if (models.empty()) {
    models = default_fpm_models(config.platform, config.n);
  }
  if (static_cast<int>(models.size()) != config.platform.nprocs()) {
    throw std::invalid_argument(
        "run_pmm: fpm_models size differs from platform processor count");
  }
  return partition::partition_areas_fpm(config.n, models, config.fpm_options)
      .areas;
}

JobPlan plan_pmm(const ExperimentConfig& config) {
  if (config.n <= 0) throw std::invalid_argument("run_pmm: n <= 0");
  const int p = config.platform.nprocs();
  if (p < 1) throw std::invalid_argument("run_pmm: empty platform");
  JobPlan plan;
  if (config.preset_spec.n > 0) {
    if (config.preset_spec.n != config.n) {
      throw std::invalid_argument("run_pmm: preset_spec.n != n");
    }
    config.preset_spec.validate(p);
    plan.spec = config.preset_spec;
    for (int r = 0; r < p; ++r) {
      plan.areas.push_back(plan.spec.area_of(r));
    }
  } else {
    plan.areas = compute_areas(config);
    plan.spec = partition::build_shape(config.shape, config.n, plan.areas,
                                       config.granularity);
  }
  return plan;
}

ExperimentResult run_pmm(const ExperimentConfig& config) {
  if (config.n <= 0) throw std::invalid_argument("run_pmm: n <= 0");
  const int p = config.platform.nprocs();
  if (p < 1) throw std::invalid_argument("run_pmm: empty platform");
  if (config.numeric && config.n > 8192) {
    throw std::invalid_argument(
        "run_pmm: numeric plane beyond n=8192 is a mistake; use the modeled "
        "plane for paper-scale sweeps");
  }
  if (config.kernel.fastmm != blas::FastMmKind::kClassical &&
      (!config.faults.empty() || config.repartition.enabled)) {
    // Recovery and re-partitioning re-execute work and audit it against
    // what a clean rank computed, relying on run-to-run bit-determinism of
    // the same (m, n, k) call; fast MM keeps that, but a re-executed cell
    // can present DIFFERENT sub-shapes to the kernel (recovered fragments,
    // re-partitioned tiles), and fast results are only norm-close — not
    // bit-equal — across shape splits. Refuse rather than silently flag
    // every recovered run as corrupt.
    throw std::invalid_argument(
        "run_pmm: fastmm is incompatible with fault injection / online "
        "re-partitioning (their verify paths demand bit-determinism across "
        "re-executed shapes); use the classical kernel there");
  }

  RuntimeContext* const ctx = RuntimeContext::current();
  if (ctx == nullptr) {
    // Size the shared compute pool so rank threads + pool workers together
    // fill the host — the paper's one-persistent-MKL-pool-per-processor
    // setup, instead of per-call thread spawns oversubscribing the machine.
    // config.kernel.threads > 0 overrides (clamped to hardware_concurrency).
    // Under the modeled engine every rank shares one scheduler thread, so
    // only that thread is reserved no matter how large p gets.
    const int reserved = config.engine == sgmpi::Engine::kModeled ? 1 : p;
    sgpool::Pool::set_reserved_threads(reserved);
    sgpool::Pool::configure(config.kernel.threads > 0
                                ? blas::resolve_gemm_threads(
                                      config.kernel.threads)
                                : sgpool::Pool::recommended_size(reserved));
  }
  // else: the context sized the pool once; skipping configure() here is
  // what keeps the PackCache / schedule cache alive across jobs (and what
  // makes concurrent run_pmm calls safe — configure is quiescent-only).

  ExperimentResult result;
  std::shared_ptr<const JobPlan> plan;
  if (ctx != nullptr && config.plan_cache_key != 0) {
    plan = ctx->plan_for(config.plan_cache_key,
                         [&config] { return plan_pmm(config); },
                         &result.plan_cache_hit);
  } else {
    plan = std::make_shared<const JobPlan>(plan_pmm(config));
  }
  result.spec = plan->spec;
  result.areas = plan->areas;
  result.total_half_perimeter = result.spec.total_half_perimeter();

  // Cross-job packed-panel reuse rides the plan identity: equal (epoch,
  // plan key, fill seed) implies bit-identical global B, the exact promise
  // SummaGenOptions::pack_namespace requires. An explicit caller namespace
  // wins; standalone runs keep the per-run context uid.
  SummaGenOptions sg_options = config.summagen_options;
  if (ctx != nullptr && config.plan_cache_key != 0 &&
      sg_options.pack_namespace == 0) {
    sg_options.pack_namespace =
        blas::pack_tag({ctx->epoch(), config.plan_cache_key, config.seed});
  }

  device::Platform platform = config.platform;
  if (config.noise_sigma > 0.0) {
    for (std::size_t r = 0; r < platform.devices.size(); ++r) {
      platform.devices[r].temporal_jitter_sigma = config.noise_sigma;
      platform.devices[r].temporal_jitter_seed =
          util::derive_seed(config.noise_seed, r);
    }
  }
  const auto processors = platform.processors(config.kernel);

  sgmpi::Config mpi_config;
  mpi_config.nranks = p;
  mpi_config.link = config.platform.mpi_link;
  mpi_config.node_of = config.platform.node_of;
  mpi_config.internode_link = config.platform.internode_link;
  mpi_config.record_events = config.record_events;
  mpi_config.faults = config.faults;
  mpi_config.fault_detect_s = config.fault_detect_s;
  mpi_config.adaptive = config.repartition.enabled;
  mpi_config.engine = config.engine;
  mpi_config.fiber_stack_bytes = config.fiber_stack_bytes;
  mpi_config.bcast_algo = config.bcast_algo;
  mpi_config.two_level_collectives = config.two_level_collectives;
  sgmpi::Runtime runtime(mpi_config);
  const bool adaptive = config.repartition.enabled;
  const bool fault_tolerant = !config.faults.empty() || adaptive;

  // Per-rank live drift multiplier over the configured plan; null with no
  // plan so the static path stays exactly as before.
  const device::DriftPlan* drift_plan = &config.drift;
  const auto drift_for = [drift_plan](int r) -> std::function<double(double)> {
    if (drift_plan->empty()) return nullptr;
    return [drift_plan, r](double t) {
      return device::drift_factor(*drift_plan, r, t);
    };
  };

  // Numeric plane: build the global inputs (and the gather target) and each
  // rank's local store.
  util::Matrix a, b, c;
  std::vector<std::unique_ptr<LocalData>> locals(
      static_cast<std::size_t>(p));
  if (config.numeric) {
    a = util::Matrix(config.n, config.n);
    b = util::Matrix(config.n, config.n);
    c = util::Matrix(config.n, config.n);
    util::fill_random(a, util::derive_seed(config.seed, 1));
    util::fill_random(b, util::derive_seed(config.seed, 2));
  }
  // Accounting window opens after the global inputs exist: what follows is
  // the data plane proper (local stores, broadcasts, workspaces, gather).
  // The window is a per-job StatsSink, not a process-wide snapshot delta —
  // overlapping service jobs would misattribute each other's events to
  // whichever window happened to be open. The main thread installs the
  // sink here (covering local stores and the gather); every rank body
  // installs it on its own thread below, and sgpool propagates it to
  // pooled tasks, so even stolen DGEMM packs bill this job.
  util::StatsSink job_stats;
  std::optional<util::ScopedStatsSink> stats_guard;
  stats_guard.emplace(&job_stats);
  const auto take_alloc_window = [&result, &job_stats] {
    util::DataPlaneStats window = job_stats.snapshot();
    const util::DataPlaneStats now = util::data_plane_stats();
    window.pool_resident_bytes = now.pool_resident_bytes;
    window.pool_peak_resident_bytes = now.pool_peak_resident_bytes;
    result.alloc = window;
  };
  if (config.numeric) {
    // Single-phase runs write C in place: each rank's owned cells are
    // disjoint, so its LocalData views the global C directly and the final
    // gather is a no-op. Fault-tolerant runs must keep a private pooled C
    // per phase — a re-executed phase accumulates its cells from zero, and
    // only copy_cell_c decides which phase's value survives.
    util::Matrix* c_target = fault_tolerant ? nullptr : &c;
    for (int r = 0; r < p; ++r) {
      locals[static_cast<std::size_t>(r)] =
          std::make_unique<LocalData>(result.spec, r, a, b, c_target);
    }
  }

  result.reports.resize(static_cast<std::size_t>(p));

  // Fault-tolerant runs re-execute in phases; rec_mutex guards the shared
  // recovery state (completed-cell set and phase list) across rank threads.
  std::mutex rec_mutex;
  CellSet done;
  std::vector<std::unique_ptr<Phase>> phases;

  // Survivor weights for re-partitioning: the configured CPM speeds / FPM
  // models, with every rank a handled slowdown degraded divided down by its
  // factor — a slowed rank keeps working, just proportionally less.
  const auto survivor_weights = [&](const std::vector<int>& survivors) {
    std::vector<double> degrade(static_cast<std::size_t>(p), 1.0);
    for (const sgmpi::FaultRecord& rec : runtime.fault_records()) {
      if (rec.event.kind == sgmpi::FaultKind::kSlowdown && rec.triggered) {
        degrade[static_cast<std::size_t>(rec.event.rank)] *= rec.event.factor;
      }
    }
    std::vector<double> weights;
    if (config.regime == Regime::kConstant) {
      std::vector<double> speeds = config.cpm_speeds;
      if (static_cast<int>(speeds.size()) != p) {
        speeds = default_cpm_speeds(config.platform);
      }
      for (int s : survivors) {
        weights.push_back(speeds[static_cast<std::size_t>(s)] /
                          degrade[static_cast<std::size_t>(s)]);
      }
    } else {
      std::vector<device::SpeedFunction> models = config.fpm_models;
      if (static_cast<int>(models.size()) != p) {
        models = default_fpm_models(config.platform, config.n);
      }
      std::vector<device::SpeedFunction> scaled;
      for (int s : survivors) {
        const device::SpeedFunction& m = models[static_cast<std::size_t>(s)];
        const double f = degrade[static_cast<std::size_t>(s)];
        if (f == 1.0) {
          scaled.push_back(m);
        } else {
          std::vector<device::SpeedPoint> pts = m.points();
          for (device::SpeedPoint& pt : pts) pt.flops_per_s /= f;
          scaled.push_back(
              device::SpeedFunction::from_points(pts, m.interpolation()));
        }
      }
      // The load-imbalancing partitioner's areas over the degraded models
      // are exactly the relative capabilities we want as weights.
      const auto fpm =
          partition::partition_areas_fpm(config.n, scaled, config.fpm_options);
      for (std::int64_t area : fpm.areas) {
        weights.push_back(std::max(1.0, static_cast<double>(area)));
      }
    }
    return weights;
  };

  // Live-measured slowdown ratios (the confirming step's observed/predicted
  // — the EWMA debounces the *decision* but lags the true factor at confirm
  // time, so the weight correction uses the instantaneous ratio the
  // hysteresis just validated) and pending detector confirmations of the
  // current phase; both guarded by rec_mutex, read only inside the shrink
  // agreement.
  std::vector<double> measured_ratio(static_cast<std::size_t>(p), 1.0);
  std::vector<std::pair<int, double>> confirms;  // (rank, vtime)

  if (!fault_tolerant) {
    runtime.run([&](sgmpi::Comm& world) {
      // Rank bodies run on their own threads (kThread) or as fibers of the
      // calling thread (kModeled, where this re-installs the same sink);
      // either way this job's events bill this job's sink.
      util::ScopedStatsSink rank_stats(&job_stats);
      const int r = world.rank();
      // Drift without re-partitioning: the static plan limps along under
      // the time-varying speeds (the ablation baseline).
      FtContext ftctx;
      ftctx.drift_factor = drift_for(r);
      result.reports[static_cast<std::size_t>(r)] = summagen_rank(
          world, result.spec, processors[static_cast<std::size_t>(r)],
          locals[static_cast<std::size_t>(r)].get(), config.contended,
          sg_options,
          config.drift.empty() ? nullptr : &ftctx);
    });
  } else {
    auto ph0 = std::make_unique<Phase>();
    ph0->spec = result.spec;
    for (int r = 0; r < p; ++r) ph0->members.push_back(r);
    ph0->locals = std::move(locals);
    phases.push_back(std::move(ph0));

    runtime.run([&](sgmpi::Comm& world) {
      util::ScopedStatsSink rank_stats(&job_stats);
      const int wr = world.rank();  // world comm: comm rank == world rank
      std::size_t round = 0;
      for (;;) {
        try {
          world.fault_check();
          Phase* ph;
          {
            std::lock_guard<std::mutex> lk(rec_mutex);
            ph = phases[round].get();
          }
          FtContext ftctx;
          ftctx.done = &ph->done_at_start;
          ftctx.on_gemm_done = [&](int bi, int bj) {
            std::lock_guard<std::mutex> lk(rec_mutex);
            done.insert({bi, bj});
          };
          ftctx.partition_epoch = static_cast<std::uint64_t>(round);
          ftctx.drift_factor = drift_for(wr);
          // The detector arms only while re-partition budget remains; its
          // confirmation is a pure function of this rank's own observation
          // stream, so identical runs confirm at the identical step.
          DriftController detector(config.repartition, ph->drift_rounds);
          if (adaptive &&
              ph->drift_rounds < config.repartition.max_repartitions) {
            ftctx.on_step = [&](const trace::StepSample& sample) {
              if (!detector.observe(sample)) return false;
              std::lock_guard<std::mutex> lk(rec_mutex);
              measured_ratio[static_cast<std::size_t>(wr)] =
                  trace::step_ratio(sample);
              confirms.emplace_back(wr, sample.vtime);
              return true;
            };
          }
          LocalData* ld = config.numeric
                              ? ph->locals[static_cast<std::size_t>(wr)].get()
                              : nullptr;
          const RankReport rep = summagen_rank(
              world, ph->spec, processors[static_cast<std::size_t>(wr)], ld,
              config.contended, sg_options, &ftctx);
          {
            std::lock_guard<std::mutex> lk(rec_mutex);
            accumulate_report(result.reports[static_cast<std::size_t>(wr)],
                              rep);
          }
          // All-live commit: a fault racing the tail of the phase surfaces
          // here as PeerFailedError on every survivor, not on a subset.
          world.ft_commit();
          return;
        } catch (const sgmpi::PeerFailedError& e) {
          // Exhausted send retries are a delivery failure, not a peer loss:
          // there is no agreed failure epoch to shrink around.
          if (e.kind == sgmpi::FaultKind::kMessageDrop) throw;
          const sgmpi::ShrinkResult res = world.shrink();
          Phase* next = nullptr;
          {
            std::lock_guard<std::mutex> lk(rec_mutex);
            if (phases.size() == round + 1) {
              // First survivor out of the shrink builds the next phase; the
              // completed-cell set is stable here because every live rank
              // has unwound into the shrink gate.
              bool drift_round = false;
              for (const sgmpi::FaultEvent& ev : res.handled) {
                if (ev.kind == sgmpi::FaultKind::kDrift) drift_round = true;
              }
              auto np = std::make_unique<Phase>();
              np->members = res.survivors;
              np->done_at_start = done;
              np->drift_rounds = phases[round]->drift_rounds;
              std::vector<double> weights = survivor_weights(res.survivors);
              if (drift_round) {
                // Correct the static weights by the live-measured slowdown
                // ratios (clamped: a near-stalled device keeps a sliver so
                // the partitioners stay well-posed), then let the grid and
                // layered re-owners compete on predicted makespan.
                for (std::size_t s = 0; s < res.survivors.size(); ++s) {
                  weights[s] /= std::max(
                      0.05, measured_ratio[static_cast<std::size_t>(
                                res.survivors[s])]);
                }
                RepartitionFamily family = RepartitionFamily::kGrid;
                np->spec = choose_repartition(phases[round]->spec, done,
                                              res.survivors, weights,
                                              &np->redistributed, &family);
                ++np->drift_rounds;

                RepartitionEvent event;
                event.epoch = static_cast<int>(round) + 1;
                event.family = family;
                event.measured_speeds = weights;
                event.redone_area = np->redistributed;
                const partition::PartitionSpec& old_spec = phases[round]->spec;
                for (int bi = 0; bi < old_spec.subplda; ++bi) {
                  for (int bj = 0; bj < old_spec.subpldb; ++bj) {
                    if (done.count({bi, bj}) != 0) continue;
                    if (np->spec.owner(bi, bj) != old_spec.owner(bi, bj)) {
                      ++event.redone_cells;
                    }
                  }
                }
                for (const auto& [cr, ct] : confirms) {
                  if (event.trigger_rank < 0 || ct < event.trigger_vtime ||
                      (ct == event.trigger_vtime && cr < event.trigger_rank)) {
                    event.trigger_rank = cr;
                    event.trigger_vtime = ct;
                  }
                }
                confirms.clear();
                result.repartitions.push_back(std::move(event));
              } else {
                np->spec = repartition_unfinished(phases[round]->spec, done,
                                                  res.survivors, weights,
                                                  &np->redistributed);
              }
              np->locals.resize(static_cast<std::size_t>(p));
              phases.push_back(std::move(np));
            }
            next = phases[round + 1].get();
          }
          if (config.numeric) {
            next->locals[static_cast<std::size_t>(wr)] =
                std::make_unique<LocalData>(next->spec, wr, a, b);
          }
          ++round;
        }
      }
    });

    result.fault_records = runtime.fault_records();
    result.recoveries = static_cast<int>(phases.size()) - 1;
    double first_trigger = -1.0;
    for (const sgmpi::FaultRecord& rec : result.fault_records) {
      const bool interrupting =
          rec.event.kind == sgmpi::FaultKind::kCrash ||
          rec.event.kind == sgmpi::FaultKind::kSlowdown;
      if (!interrupting || !rec.triggered) continue;
      if (rec.first_detect_vtime >= 0.0 &&
          (first_trigger < 0.0 || rec.trigger_vtime < first_trigger)) {
        first_trigger = rec.trigger_vtime;
        result.detection_latency_s = rec.first_detect_vtime - rec.trigger_vtime;
      }
      if (rec.handled && rec.handled_vtime >= 0.0) {
        result.recovery_vtime_s += rec.handled_vtime - rec.trigger_vtime;
      }
    }
    for (const auto& ph : phases) result.redistributed_area += ph->redistributed;
  }

  for (int r = 0; r < p; ++r) {
    const auto& clk = runtime.clock(r);
    result.rank_exec_s.push_back(clk.now());
    result.rank_comp_s.push_back(clk.compute_seconds());
    result.rank_comm_s.push_back(clk.comm_seconds());
    result.rank_idle_s.push_back(clk.idle_seconds());
    result.rank_hidden_s.push_back(clk.hidden_comm_seconds());
    result.exec_time_s = std::max(result.exec_time_s, clk.now());
    result.comp_time_s = std::max(result.comp_time_s, clk.compute_seconds());
    result.comm_time_s = std::max(result.comm_time_s, clk.comm_seconds());
    result.hidden_comm_time_s =
        std::max(result.hidden_comm_time_s, clk.hidden_comm_seconds());
  }
  const double n3 = static_cast<double>(config.n) *
                    static_cast<double>(config.n) *
                    static_cast<double>(config.n);
  result.tflops = 2.0 * n3 / result.exec_time_s / 1.0e12;

  if (config.record_events) {
    result.events = runtime.events().sorted();
    result.energy = energy::dynamic_energy_exact(
        result.events, config.platform, result.exec_time_s);
    result.has_energy = true;
  }

  take_alloc_window();

  if (config.numeric) {
    if (!fault_tolerant) {
      for (int r = 0; r < p; ++r) {
        locals[static_cast<std::size_t>(r)]->gather_c(result.spec, c);
      }
    } else {
      // Assemble each C sub-partition from the phase that completed it:
      // the cells a phase finished are its successor's done_at_start minus
      // its own (the final phase completes everything still in `done`).
      for (std::size_t k = 0; k < phases.size(); ++k) {
        const CellSet& start = phases[k]->done_at_start;
        const CellSet& end =
            k + 1 < phases.size() ? phases[k + 1]->done_at_start : done;
        for (const auto& cell : end) {
          if (start.count(cell) != 0) continue;
          const int owner = phases[k]->spec.owner(cell.first, cell.second);
          copy_cell_c(phases[k]->spec,
                      *phases[k]->locals[static_cast<std::size_t>(owner)],
                      cell.first, cell.second, c);
        }
      }
    }
    // Re-take the window with the gather included, then close the sink:
    // the serial verification reference is measurement harness, not data
    // plane, and must not bill the job.
    take_alloc_window();
    stats_guard.reset();
    const util::Matrix expected = reference_multiply(a, b);
    result.max_abs_error = util::Matrix::max_abs_diff(c, expected);
    double tolerance = gemm_tolerance(config.n);
    if (config.kernel.fastmm != blas::FastMmKind::kClassical) {
      // Fast MM is norm-bound, not bit-identical: widen the element-wise
      // tolerance by the worst-case per-level amplification (12x in max
      // norm, Higham's Strassen bound) at the deepest split this run's
      // largest local product could reach.
      tolerance *= std::pow(
          12.0, blas::fastmm_max_reachable_depth(config.n, config.n,
                                                 config.n, config.kernel));
    }
    result.verified = result.max_abs_error <= tolerance;
  }
  return result;
}

}  // namespace summagen::core

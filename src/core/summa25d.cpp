#include "src/core/summa25d.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/blas/pack_cache.hpp"
#include "src/core/panel_bcast.hpp"
#include "src/util/buffer_pool.hpp"
#include "src/util/matrix_view.hpp"

namespace summagen::core {
namespace {

/// Scheduler constant folded into pack tags (keeps 2.5D keys disjoint from
/// plain SUMMA's even for identical geometry).
constexpr std::uint64_t kSumma25dPackTag = 0x53323544ull;  // "S25D"

void validate_config(std::int64_t n, const Summa25dConfig& config) {
  if (n <= 0) throw std::invalid_argument("summa25d: n <= 0");
  if (config.q < 1 || config.c < 1) {
    throw std::invalid_argument("summa25d: grid extents must be >= 1");
  }
  if (config.panel < 1) {
    throw std::invalid_argument("summa25d: panel width must be >= 1");
  }
  if (config.q > n || config.c > n) {
    throw std::invalid_argument("summa25d: grid larger than the matrix");
  }
}

SummaConfig layer_grid(const Summa25dConfig& config, std::int64_t panel) {
  SummaConfig grid;
  grid.pr = config.q;
  grid.pc = config.q;
  grid.panel = panel;
  return grid;
}

}  // namespace

Summa25dLocalData::Summa25dLocalData(std::int64_t n,
                                     const Summa25dConfig& config, int rank,
                                     const util::Matrix& a,
                                     const util::Matrix& b) {
  validate_config(n, config);
  const int per_layer = config.q * config.q;
  if (rank < 0 || rank >= per_layer * config.c) {
    throw std::invalid_argument("Summa25dLocalData: rank outside grid");
  }
  if (a.rows() != n || a.cols() != n || b.rows() != n || b.cols() != n) {
    throw std::invalid_argument("Summa25dLocalData: globals must be n x n");
  }
  const int layer = rank / per_layer;
  const int within = rank % per_layer;
  layer_zero_ = layer == 0;
  extent_ = summa_block(n, layer_grid(config, config.panel), within);
  if (layer_zero_) {
    a_ = util::extract_block(a, extent_.row0, extent_.col0, extent_.rows,
                             extent_.cols);
    b_ = util::extract_block(b, extent_.row0, extent_.col0, extent_.rows,
                             extent_.cols);
  } else {
    // Receive buffers for the replication broadcast. These must stay
    // owning Matrices: they are written by the depth bcast, not sourced
    // from the layer-0 globals this rank can see.
    a_ = util::Matrix(extent_.rows, extent_.cols);
    b_ = util::Matrix(extent_.rows, extent_.cols);
  }
  c_ = util::Matrix(extent_.rows, extent_.cols);
}

void Summa25dLocalData::gather_c(util::Matrix& c_global) const {
  if (!layer_zero_) {
    throw std::logic_error(
        "Summa25dLocalData: gather_c from a non-zero layer");
  }
  util::place_block(c_global, c_, extent_.row0, extent_.col0);
}

Summa25dReport summa25d_rank(sgmpi::Comm& world, std::int64_t n,
                             const Summa25dConfig& config,
                             const device::AbstractProcessor& ap,
                             Summa25dLocalData* data, bool contended) {
  validate_config(n, config);
  const int per_layer = config.q * config.q;
  if (world.size() != per_layer * config.c) {
    throw std::invalid_argument("summa25d: world size != q*q*c");
  }
  const int rank = world.rank();
  const int layer = rank / per_layer;
  const int within = rank % per_layer;
  const int gi = within / config.q;
  const int gj = within % config.q;
  const SummaBlock my =
      summa_block(n, layer_grid(config, config.panel), within);

  Summa25dReport report;

  // --- Step 1: replicate A and B blocks from layer 0 down the stack ---
  if (config.c > 1) {
    std::vector<int> stack;
    for (int l = 0; l < config.c; ++l) stack.push_back(l * per_layer + within);
    sgmpi::Comm depth = world.subgroup(stack);
    const std::int64_t bytes =
        my.rows * my.cols * static_cast<std::int64_t>(sizeof(double));
    if (data != nullptr) {
      report.mpi_time_s += depth.bcast(data->a_block().data(),
                                       my.rows * my.cols, 0);
      report.mpi_time_s += depth.bcast(data->b_block().data(),
                                       my.rows * my.cols, 0);
    } else {
      report.mpi_time_s += depth.bcast_bytes(nullptr, bytes, 0);
      report.mpi_time_s += depth.bcast_bytes(nullptr, bytes, 0);
    }
    report.replication_bytes += 2 * bytes;
    report.bcasts += 2;
  }

  // --- Step 2: SUMMA over this layer's k share ---
  std::vector<int> row_members, col_members;
  for (int j = 0; j < config.q; ++j) {
    row_members.push_back(layer * per_layer + gi * config.q + j);
  }
  for (int i = 0; i < config.q; ++i) {
    col_members.push_back(layer * per_layer + i * config.q + gj);
  }
  sgmpi::Comm row = config.q > 1 ? world.subgroup(row_members) : world;
  sgmpi::Comm col = config.q > 1 ? world.subgroup(col_members) : world;

  const std::int64_t k_lo = balanced_part_offset(n, config.c, layer);
  const std::int64_t k_hi = balanced_part_offset(n, config.c, layer + 1);

  // Panel workspaces (numeric plane only), leased from the shared pool;
  // not zeroed — every step fully overwrites what the GEMM reads.
  util::PooledBuffer wa_store, wb_store;
  if (data != nullptr) {
    wa_store = util::BufferPool::instance().acquire(my.rows * config.panel);
    wb_store = util::BufferPool::instance().acquire(my.cols * config.panel);
  }

  for (std::int64_t k0 = k_lo; k0 < k_hi; k0 += config.panel) {
    const std::int64_t bcur = std::min(config.panel, k_hi - k0);
    ++report.steps;

    util::MatrixView wa, wb;
    util::ConstMatrixView a_block, b_block;
    if (data != nullptr) {
      wa = util::MatrixView(wa_store.data(), my.rows, bcur, bcur);
      wb = util::MatrixView(wb_store.data(), bcur, my.cols, my.cols);
      a_block = data->a_block();
      b_block = data->b_block();
    }

    // A panel along my layer row, B panel down my layer column; segments
    // split at the q-grid block-ownership boundaries over the full k axis.
    const PanelBcastStats sa = bcast_k_panel(row, PanelAxis::kA, n, config.q,
                                             gj, my.rows, k0, bcur, a_block,
                                             wa);
    const PanelBcastStats sb = bcast_k_panel(col, PanelAxis::kB, n, config.q,
                                             gi, my.cols, k0, bcur, b_block,
                                             wb);
    report.mpi_time_s += sa.mpi_time_s + sb.mpi_time_s;
    report.bcasts += sa.bcasts + sb.bcasts;
    report.bcast_bytes += sa.bytes + sb.bytes;

    // Rank-b update of the layer-local partial C.
    device::KernelCost cost;
    if (data == nullptr) {
      cost = ap.kernel_cost(my.rows, my.cols, bcur, contended);
    } else {
      // WB holds B[k0:k0+bcur, col0:col0+my.cols] — identical on every
      // rank of my layer column, so tag it for the blas pack cache.
      const std::int64_t col0 = balanced_part_offset(n, config.q, gj);
      const std::uint64_t wb_key = blas::pack_tag(
          {world.context_uid(), kSumma25dPackTag,
           static_cast<std::uint64_t>(n), static_cast<std::uint64_t>(k0),
           static_cast<std::uint64_t>(bcur),
           static_cast<std::uint64_t>(col0),
           static_cast<std::uint64_t>(my.cols)});
      cost = ap.run_gemm(my.rows, my.cols, bcur, wa.data(), bcur, wb.data(),
                         my.cols, data->c_block().data(), my.cols, contended,
                         wb_key);
    }
    auto& clk = world.clock();
    const double t0 = clk.now();
    clk.advance_compute(cost.compute_s + cost.transfer_s);
    if (world.events().enabled()) {
      world.events().record({world.world_rank(), trace::EventKind::kCompute,
                             t0, clk.now(), 0,
                             blas::gemm_flops(my.rows, my.cols, bcur),
                             "2.5d k0=" + std::to_string(k0)});
    }
    report.flops += blas::gemm_flops(my.rows, my.cols, bcur);
  }

  // --- Step 3: reduce the partial C blocks across the stack ---
  if (config.c > 1) {
    std::vector<int> stack;
    for (int l = 0; l < config.c; ++l) stack.push_back(l * per_layer + within);
    sgmpi::Comm depth = world.subgroup(stack);
    const std::int64_t count = my.rows * my.cols;
    report.mpi_time_s += depth.allreduce_sum_buffer(
        data != nullptr ? data->c_block().data() : nullptr, count);
    report.reduce_bytes +=
        count * static_cast<std::int64_t>(sizeof(double));
  }
  return report;
}

}  // namespace summagen::core

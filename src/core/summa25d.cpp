#include "src/core/summa25d.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/blas/pack_cache.hpp"
#include "src/core/panel_bcast.hpp"
#include "src/core/taskgraph/executor.hpp"
#include "src/core/taskgraph/taskgraph.hpp"
#include "src/util/buffer_pool.hpp"
#include "src/util/matrix_view.hpp"

namespace summagen::core {
namespace {

/// Scheduler constant folded into pack tags (keeps 2.5D keys disjoint from
/// plain SUMMA's even for identical geometry).
constexpr std::uint64_t kSumma25dPackTag = 0x53323544ull;  // "S25D"

void validate_config(std::int64_t n, const Summa25dConfig& config) {
  if (n <= 0) throw std::invalid_argument("summa25d: n <= 0");
  if (config.q < 1 || config.c < 1) {
    throw std::invalid_argument("summa25d: grid extents must be >= 1");
  }
  if (config.panel < 1) {
    throw std::invalid_argument("summa25d: panel width must be >= 1");
  }
  if (config.q > n || config.c > n) {
    throw std::invalid_argument("summa25d: grid larger than the matrix");
  }
}

SummaConfig layer_grid(const Summa25dConfig& config, std::int64_t panel) {
  SummaConfig grid;
  grid.pr = config.q;
  grid.pc = config.q;
  grid.panel = panel;
  return grid;
}

}  // namespace

Summa25dLocalData::Summa25dLocalData(std::int64_t n,
                                     const Summa25dConfig& config, int rank,
                                     const util::Matrix& a,
                                     const util::Matrix& b) {
  validate_config(n, config);
  const int per_layer = config.q * config.q;
  if (rank < 0 || rank >= per_layer * config.c) {
    throw std::invalid_argument("Summa25dLocalData: rank outside grid");
  }
  if (a.rows() != n || a.cols() != n || b.rows() != n || b.cols() != n) {
    throw std::invalid_argument("Summa25dLocalData: globals must be n x n");
  }
  const int layer = rank / per_layer;
  const int within = rank % per_layer;
  layer_zero_ = layer == 0;
  extent_ = summa_block(n, layer_grid(config, config.panel), within);
  if (layer_zero_) {
    a_ = util::extract_block(a, extent_.row0, extent_.col0, extent_.rows,
                             extent_.cols);
    b_ = util::extract_block(b, extent_.row0, extent_.col0, extent_.rows,
                             extent_.cols);
  } else {
    // Receive buffers for the replication broadcast. These must stay
    // owning Matrices: they are written by the depth bcast, not sourced
    // from the layer-0 globals this rank can see.
    a_ = util::Matrix(extent_.rows, extent_.cols);
    b_ = util::Matrix(extent_.rows, extent_.cols);
  }
  c_ = util::Matrix(extent_.rows, extent_.cols);
}

void Summa25dLocalData::gather_c(util::Matrix& c_global) const {
  if (!layer_zero_) {
    throw std::logic_error(
        "Summa25dLocalData: gather_c from a non-zero layer");
  }
  util::place_block(c_global, c_, extent_.row0, extent_.col0);
}

Summa25dReport summa25d_rank(sgmpi::Comm& world, std::int64_t n,
                             const Summa25dConfig& config,
                             const device::AbstractProcessor& ap,
                             Summa25dLocalData* data, bool contended) {
  validate_config(n, config);
  const int per_layer = config.q * config.q;
  if (world.size() != per_layer * config.c) {
    throw std::invalid_argument("summa25d: world size != q*q*c");
  }
  const int rank = world.rank();
  const int layer = rank / per_layer;
  const int within = rank % per_layer;
  const int gi = within / config.q;
  const int gj = within % config.q;
  const SummaBlock my =
      summa_block(n, layer_grid(config, config.panel), within);

  Summa25dReport report;

  // Grid communicators. The depth communicator threads the replication
  // (step 1) and reduction (step 3) nodes; subgroups are cached by member
  // list, so hoisting its creation out of the step scopes is free.
  std::vector<int> stack, row_members, col_members;
  if (config.c > 1) {
    for (int l = 0; l < config.c; ++l) stack.push_back(l * per_layer + within);
  }
  for (int j = 0; j < config.q; ++j) {
    row_members.push_back(layer * per_layer + gi * config.q + j);
  }
  for (int i = 0; i < config.q; ++i) {
    col_members.push_back(layer * per_layer + i * config.q + gj);
  }
  sgmpi::Comm depth = config.c > 1 ? world.subgroup(stack) : world;
  sgmpi::Comm row = config.q > 1 ? world.subgroup(row_members) : world;
  sgmpi::Comm col = config.q > 1 ? world.subgroup(col_members) : world;

  const std::int64_t k_lo = balanced_part_offset(n, config.c, layer);
  const std::int64_t k_hi = balanced_part_offset(n, config.c, layer + 1);
  const int nsteps =
      static_cast<int>((k_hi - k_lo + config.panel - 1) / config.panel);

  // The full 2.5D dataflow: replication -> step chain -> reduction. Like
  // plain SUMMA this is a chain per rank, so every schedule replays it in
  // program order.
  const taskgraph::TaskGraph graph = taskgraph::build_summa25d_graph(
      nsteps, rank, row_members, col_members, stack);

  // Panel workspaces (numeric plane only), leased from the shared pool;
  // not zeroed — every step fully overwrites what the GEMM reads.
  util::PooledBuffer wa_store, wb_store;
  if (data != nullptr) {
    wa_store = util::BufferPool::instance().acquire(my.rows * config.panel);
    wb_store = util::BufferPool::instance().acquire(my.cols * config.panel);
  }

  // --- Step 1 bodies: replicate an A/B block from layer 0 down the stack
  // (payload -1, aux 0 = A / 1 = B) ---
  auto exec_replicate = [&](const taskgraph::TaskNode& node) {
    const std::int64_t bytes =
        my.rows * my.cols * static_cast<std::int64_t>(sizeof(double));
    if (data != nullptr) {
      util::Matrix& block =
          node.aux == 0 ? data->a_block() : data->b_block();
      report.mpi_time_s += depth.bcast(block.data(), my.rows * my.cols, 0);
    } else {
      report.mpi_time_s += depth.bcast_bytes(nullptr, bytes, 0);
    }
    report.replication_bytes += bytes;
    report.bcasts += 1;
  };

  // --- Step 2 bodies: A/B panel of step `payload` along my layer row /
  // down my layer column; segments split at the q-grid block-ownership
  // boundaries over the full k axis ---
  auto exec_panel = [&](const taskgraph::TaskNode& node) {
    const std::int64_t k0 = k_lo + node.payload * config.panel;
    const std::int64_t bcur = std::min(config.panel, k_hi - k0);
    PanelBcastStats stats;
    if (node.aux == 0) {
      util::MatrixView wa;
      util::ConstMatrixView a_block;
      if (data != nullptr) {
        wa = util::MatrixView(wa_store.data(), my.rows, bcur, bcur);
        a_block = data->a_block();
      }
      stats = bcast_k_panel(row, PanelAxis::kA, n, config.q, gj, my.rows,
                            k0, bcur, a_block, wa);
    } else {
      util::MatrixView wb;
      util::ConstMatrixView b_block;
      if (data != nullptr) {
        wb = util::MatrixView(wb_store.data(), bcur, my.cols, my.cols);
        b_block = data->b_block();
      }
      stats = bcast_k_panel(col, PanelAxis::kB, n, config.q, gi, my.cols,
                            k0, bcur, b_block, wb);
    }
    report.mpi_time_s += stats.mpi_time_s;
    report.bcasts += stats.bcasts;
    report.bcast_bytes += stats.bytes;
  };

  // Rank-b update of the layer-local partial C (step `payload`).
  auto exec_step_gemm = [&](const taskgraph::TaskNode& node) {
    const std::int64_t k0 = k_lo + node.payload * config.panel;
    const std::int64_t bcur = std::min(config.panel, k_hi - k0);
    ++report.steps;
    device::KernelCost cost;
    if (data == nullptr) {
      cost = ap.kernel_cost(my.rows, my.cols, bcur, contended);
    } else {
      const util::MatrixView wa(wa_store.data(), my.rows, bcur, bcur);
      const util::MatrixView wb(wb_store.data(), bcur, my.cols, my.cols);
      // WB holds B[k0:k0+bcur, col0:col0+my.cols] — identical on every
      // rank of my layer column, so tag it for the blas pack cache.
      const std::int64_t col0 = balanced_part_offset(n, config.q, gj);
      const std::uint64_t wb_key = blas::pack_tag(
          {world.context_uid(), kSumma25dPackTag,
           static_cast<std::uint64_t>(n), static_cast<std::uint64_t>(k0),
           static_cast<std::uint64_t>(bcur),
           static_cast<std::uint64_t>(col0),
           static_cast<std::uint64_t>(my.cols)});
      cost = ap.run_gemm(my.rows, my.cols, bcur, wa.data(), bcur, wb.data(),
                         my.cols, data->c_block().data(), my.cols, contended,
                         wb_key);
    }
    auto& clk = world.clock();
    const double t0 = clk.now();
    clk.advance_compute(cost.compute_s + cost.transfer_s);
    if (world.events().enabled()) {
      world.events().record({world.world_rank(), trace::EventKind::kCompute,
                             t0, clk.now(), 0,
                             blas::gemm_flops(my.rows, my.cols, bcur),
                             "2.5d k0=" + std::to_string(k0)});
    }
    report.flops += blas::gemm_flops(my.rows, my.cols, bcur);
  };

  // --- Step 3 body: reduce the partial C blocks across the stack ---
  auto exec_reduce = [&](const taskgraph::TaskNode&) {
    const std::int64_t count = my.rows * my.cols;
    report.mpi_time_s += depth.allreduce_sum_buffer(
        data != nullptr ? data->c_block().data() : nullptr, count);
    report.reduce_bytes +=
        count * static_cast<std::int64_t>(sizeof(double));
  };

  taskgraph::ExecHooks hooks;
  hooks.run_comm = [&](const taskgraph::TaskNode& node) {
    if (node.kind == taskgraph::NodeKind::kReduce) {
      exec_reduce(node);
    } else if (node.payload < 0) {
      exec_replicate(node);
    } else {
      exec_panel(node);
    }
  };
  hooks.run_local = [&](const taskgraph::TaskNode& node) {
    if (node.kind == taskgraph::NodeKind::kPack) {
      exec_panel(node);
    } else {
      exec_step_gemm(node);
    }
  };
  taskgraph::run_graph(graph, rank, taskgraph::schedule_for(config.scheduler),
                       /*window=*/0, hooks);
  return report;
}

}  // namespace summagen::core

// RuntimeContext — explicit ownership of the process-wide execution state a
// stream of PMM jobs shares.
//
// Historically run_pmm implicitly owned that state: every call resized the
// sgpool compute pool (a quiescent-only operation whose hooks also drop the
// blas PackCache and the SharedSchedule cache), so two concurrent callers
// raced on the pool and wiped each other's caches, and nothing could reuse
// partitions or packed panels across calls. A RuntimeContext makes the
// ownership explicit for multi-job execution (src/service):
//
//   * the pool is sized once, when the context activates (a genuine
//     quiescent point); jobs never reconfigure it;
//   * the PackCache and SharedSchedule cache survive across jobs — their
//     quiescent trims only fire at context (re)activation — so identical
//     back-to-back jobs reuse packed B panels and cached plan/task graphs;
//   * a plan cache keyed by caller-asserted job signatures lets identical
//     jobs share one partition + per-rank areas (the expensive Step-1/2
//     work of the paper's pipeline);
//   * a context epoch namespaces every cross-job cache key, so
//     invalidate() cuts off all reuse from earlier epochs at once.
//
// Exactly one context can be active at a time; run_pmm picks it up via
// RuntimeContext::current(). With no active context run_pmm behaves exactly
// as before (per-call pool sizing, caches trimmed per run) — single-job
// numerics and virtual times are bit-identical to the pre-context runner.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/partition/spec.hpp"

namespace summagen::core {

/// The reusable output of the runner's plan phase: Step 1 (per-rank areas)
/// and Step 2 (shape construction) of the paper's pipeline, everything a
/// job needs before touching the sgmpi runtime.
struct JobPlan {
  partition::PartitionSpec spec;
  std::vector<std::int64_t> areas;  ///< requested per-rank areas
};

class RuntimeContext {
 public:
  struct Options {
    /// Rank threads to reserve alongside the pool workers (the service's
    /// executor slots x ranks per job for the thread engine; slots for the
    /// modeled engine). Negative = keep the current reservation.
    int reserved_threads = -1;
    /// Shared compute-pool size; 0 = recommended_size for the reservation.
    int pool_threads = 0;
    /// Plan-cache entries kept (LRU beyond this).
    std::size_t plan_cache_capacity = 64;
  };

  struct PlanCacheStats {
    std::int64_t lookups = 0;
    std::int64_t hits = 0;
    std::int64_t entries = 0;  ///< currently cached plans
  };

  /// Activates this context (throws std::logic_error if another is active)
  /// and sizes the shared pool once — the activation is the quiescent
  /// point at which the per-run caches of earlier standalone runs drop.
  RuntimeContext();  ///< default Options
  explicit RuntimeContext(const Options& options);
  ~RuntimeContext();
  RuntimeContext(const RuntimeContext&) = delete;
  RuntimeContext& operator=(const RuntimeContext&) = delete;

  /// The active context, or nullptr (standalone run_pmm behaviour).
  static RuntimeContext* current();

  /// Monotonic cache epoch, folded into every cross-job cache key.
  std::uint64_t epoch() const;

  /// Bumps the epoch and clears the plan cache: every cross-job reuse
  /// channel (plans, pack namespaces) is severed at once. Safe to call
  /// with jobs in flight — running jobs keep their shared_ptr'd plans and
  /// their own epoch-tagged pack entries.
  void invalidate();

  /// The cached plan for `key`, building (and caching) it via `build` on a
  /// miss. Key identity is caller-asserted, like blas b_pack_key: callers
  /// passing equal keys promise identical plan-relevant configuration.
  /// `hit` (optional) reports whether the plan was served from cache.
  /// Concurrent same-key callers may both build; one result wins the cache
  /// (build is deterministic, so the copies are identical).
  std::shared_ptr<const JobPlan> plan_for(
      std::uint64_t key, const std::function<JobPlan()>& build,
      bool* hit = nullptr);

  PlanCacheStats plan_cache_stats() const;

 private:
  mutable std::mutex mu_;
  std::uint64_t epoch_ = 1;  ///< guarded by mu_
  std::size_t capacity_;
  /// LRU: most-recently-used at the front; the map stores list iterators.
  struct Entry {
    std::uint64_t key = 0;
    std::shared_ptr<const JobPlan> plan;
  };
  std::list<Entry> lru_;                 ///< guarded by mu_
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::int64_t lookups_ = 0;  ///< guarded by mu_
  std::int64_t hits_ = 0;     ///< guarded by mu_
};

}  // namespace summagen::core

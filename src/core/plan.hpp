// Explicit execution plan for one SummaGen run.
//
// Historically `summagen_rank` interleaved schedule derivation and
// execution inside three monolithic stage functions. The plan splits the
// two: `build_plan` derives, once per run and identically on every rank,
// the complete list of communication operations (panel broadcasts of A and
// B sub-partitions over their row/column subgroups), purely-local copies
// (rows/columns with a single owner), and local DGEMMs. Schedulers then
// execute the plan — `kEager` in the paper's strict phase order, or
// `kPipelined` with non-blocking broadcasts overlapping DGEMM execution.
//
// Ordering contract: `comm_ops` is in the eager global order (all A
// operations by sub-partition row, then all B operations by column). Every
// rank derives the same list, so the sub-sequence of operations on any one
// subgroup communicator is identical across its members — the MPI
// collective-ordering rule. Both schedulers issue operations in exactly
// this order; the pipelined one merely separates posting from completion.
//
// Overlap granularity: a DGEMM on sub-partition (bi, bj) reads the full
// A row line bi and B column line bj along the shared dimension k = n.
// Waiting for both whole lines would serialise the last broadcast against
// the whole multiplication, so each GemmOp carries `chunks`: k-intervals
// whose covering payloads (the A sub-partition of the column block and the
// B panels of the row block intersecting the interval) arrive by a known
// prefix of `comm_ops`. Executing the chunks in ascending-k order as
// C += A[:, k0:k1) * B[k0:k1, :] accumulations is numerically identical to
// the single whole-k DGEMM for the in-place kernels (kBlocked/kThreaded
// update every C element in ascending-k order either way), and lets the
// broadcasts beyond `dep` ride the communication lane under the chunk.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/summagen.hpp"
#include "src/partition/spec.hpp"

namespace summagen::core {

/// One panel broadcast over a row/column subgroup.
struct CommOp {
  bool is_a = true;  ///< A row broadcast (Fig. 2) or B column (Fig. 3)
  int bi = 0;        ///< sub-partition row of the payload
  int bj = 0;        ///< sub-partition column of the payload
  std::int64_t p0 = 0;    ///< first payload row of this panel
  std::int64_t rows = 0;  ///< panel rows (<= sub-partition height)
  std::int64_t width = 0; ///< elements per payload row
  std::int64_t bytes = 0; ///< rows * width * sizeof(double)
  std::vector<int> owners;  ///< subgroup members (world ranks, ascending)
  int root = 0;             ///< index of the owner within `owners`
  int owner = 0;            ///< world rank owning the sub-partition
};

/// Local copy of an owned sub-partition into WA/WB (single-owner row or
/// column: no communication, zero virtual cost).
struct CopyOp {
  bool is_a = true;
  int bi = 0;
  int bj = 0;
};

/// One k-interval of a GemmOp, runnable as soon as a prefix of `comm_ops`
/// has completed. Chunks of one GemmOp are contiguous, cover [0, n), and
/// have strictly increasing `dep` (maximal equal-dep intervals are merged).
struct GemmChunk {
  std::int64_t k0 = 0;  ///< first shared-dimension index
  std::int64_t k1 = 0;  ///< one past the last shared-dimension index
  /// Index into `comm_ops` of the last operation this chunk reads from;
  /// -1 when every input is locally owned (copies).
  int dep = -1;
};

/// One local DGEMM on an owned sub-partition.
struct GemmOp {
  int bi = 0;
  int bj = 0;
  int owner = 0;  ///< executing rank
  std::vector<GemmChunk> chunks;  ///< k-decomposition for the pipeline
};

struct ExecutionPlan {
  std::vector<CommOp> comm_ops;  ///< eager global order (A rows, then B cols)
  std::vector<CopyOp> copy_ops;  ///< order-free (no virtual cost)
  std::vector<GemmOp> gemm_ops;  ///< row-major (bi, bj) — the eager order
};

/// Derives the plan for `spec` under `options` (panel splitting applies).
/// Deterministic: every rank computes the same plan.
ExecutionPlan build_plan(const partition::PartitionSpec& spec,
                         const SummaGenOptions& options);

}  // namespace summagen::core

#include "src/core/reference.hpp"

#include <limits>

namespace summagen::core {

util::Matrix reference_multiply(const util::Matrix& a, const util::Matrix& b) {
  return blas::multiply(a, b, {.kernel = blas::GemmKernel::kBlocked});
}

double gemm_tolerance(std::int64_t n) {
  return 64.0 * static_cast<double>(n) *
         std::numeric_limits<double>::epsilon();
}

}  // namespace summagen::core

// SummaGen: parallel matrix-matrix multiplication over (possibly
// non-rectangular) partitions — the paper's primary contribution
// (Section IV).
//
// C = A * B with A, B, C square n x n matrices laid out by a PartitionSpec.
// Like SUMMA, the algorithm has three stages, executed by every rank:
//
//   1. Horizontal communications of A (Figure 2): for every sub-partition
//      row the rank appears in, every sub-partition of that row is
//      broadcast across the row's owners (or copied locally when a single
//      processor owns the whole row), accumulating into the working matrix
//      WA (covering rows x n).
//   2. Vertical communications of B (Figure 3): symmetric, down the
//      sub-partition columns, into WB (n x covering columns).
//   3. Local computations (Figure 4): one DGEMM per *owned* sub-partition
//      (height x n) * (n x width) — computing per sub-partition rather than
//      WA*WB avoids redundantly computing cells owned by other ranks.
//
// The function is data-plane agnostic: with a numeric LocalData it moves
// and multiplies real doubles; with `data == nullptr` it performs the same
// communication schedule with null payloads and only advances the virtual
// clocks (benches at paper-scale N).
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <utility>

#include "src/core/dataplane.hpp"
#include "src/device/device.hpp"
#include "src/mpi/mpi.hpp"
#include "src/partition/spec.hpp"
#include "src/trace/step_timing.hpp"

namespace summagen::core {

/// Which scheduler executes the derived plan (src/core/plan.hpp).
enum class Scheduler {
  /// The paper's strict phase order: all A broadcasts, all B broadcasts,
  /// then all local DGEMMs, every communication blocking. The oracle: its
  /// numeric results and virtual timing match the original implementation
  /// bit for bit.
  kEager,
  /// Communication/computation overlap: broadcasts are posted
  /// non-blocking and every DGEMM is split into k-chunks along the shared
  /// dimension, each chunk tagged with the last broadcast it reads
  /// (GemmChunk::dep in src/core/plan.hpp). A chunk completes only the
  /// broadcasts it depends on, so earlier chunks compute while later
  /// panels are still in flight on the virtual communication lane.
  /// Numeric results are bit-identical to kEager for the in-place
  /// accumulating kernels (kBlocked, kThreaded): chunked C += A*B updates
  /// touch every element in the same ascending-k order; only the modeled
  /// timeline changes.
  kPipelined,
  /// Dataflow execution of the dependency task graph
  /// (src/core/taskgraph/): broadcasts are posted ahead up to the
  /// `overlap_depth` window and completed in the plan's collective order,
  /// but DGEMM chunks run as soon as *their* dependencies are satisfied —
  /// the rank blocks in a broadcast completion only when no chunk is
  /// ready, so compute never idles behind a panel another chunk could
  /// hide. Bit-identical to the other schedulers: chunks of one cell
  /// still chain in ascending-k order and distinct cells touch disjoint C.
  kTaskGraph,
};

const char* to_string(Scheduler scheduler);

/// Execution options shared by all ranks of a run.
struct SummaGenOptions {
  /// Split every sub-partition broadcast into row panels of at most this
  /// many rows (the paper's "blocks of size r" made operational): bounds
  /// the temporary receive buffer at panel * width elements at the cost of
  /// more broadcast latencies. 0 = broadcast whole sub-partitions (the
  /// paper's Figures 2-3 behaviour).
  std::int64_t bcast_panel_rows = 0;

  Scheduler scheduler = Scheduler::kEager;

  /// kPipelined and kTaskGraph: maximum number of posted-but-uncompleted
  /// broadcasts per rank. For kPipelined this is the prefetch window of
  /// the in-order pipeline; for kTaskGraph it is the same quantity seen
  /// through the graph — the DAG's in-flight-broadcast window (how far the
  /// executor posts ahead of the completion front). <= 0 means unbounded.
  int overlap_depth = 2;

  /// Caller-asserted namespace for the blas pack-cache B-panel tags. 0
  /// (default): tags are namespaced by the runtime's context uid — packed
  /// panels are shared within one run only, the historical behaviour.
  /// Non-zero: the value replaces the context uid in the tags, so two runs
  /// passing the same namespace share packed panels *across jobs*. Callers
  /// passing equal namespaces promise bit-identical global B contents
  /// (same n, same fill seed) — the same caller-asserted identity contract
  /// as blas b_pack_key. The multi-job service derives this from
  /// (context epoch, plan key, seed); recovery phases stay safe either way
  /// because the partition epoch is always folded in alongside.
  std::uint64_t pack_namespace = 0;
};

/// Per-rank accounting returned by one SummaGen execution.
struct RankReport {
  int bcasts = 0;                  ///< broadcasts participated in
  std::int64_t bcast_bytes = 0;    ///< payload bytes of those broadcasts
  double mpi_time_s = 0.0;         ///< modeled MPI time charged to this rank
  int gemm_calls = 0;              ///< local DGEMM invocations
  std::int64_t flops = 0;          ///< local floating-point operations
  double kernel_compute_s = 0.0;   ///< modeled in-core kernel time
  double kernel_transfer_s = 0.0;  ///< modeled host<->device staging time
  /// Broadcast cost hidden behind local compute by the pipelined
  /// scheduler (always 0 under kEager) — this rank's overlap win.
  double hidden_comm_s = 0.0;
};

/// Fault-tolerance hooks threaded through one SummaGen execution
/// (DESIGN.md "Fault model"). All fields optional; a null FtContext* (the
/// default) leaves the execution path untouched.
struct FtContext {
  /// C sub-partitions already completed by earlier recovery phases. When
  /// non-empty the task graph is pruned (taskgraph::prune_completed):
  /// their DGEMM chunks are dropped, and with them every broadcast/copy
  /// feeding only finished cells. Node ids — and with them the
  /// chunk->broadcast dependencies — survive pruning, so recovery phases
  /// run under whichever scheduler the caller configured: recovery is
  /// re-scheduling the un-run subgraph, not a bespoke retry path.
  const std::set<std::pair<int, int>>* done = nullptr;

  /// Invoked after each owned C sub-partition (bi, bj) finishes — the
  /// completion tracker recovery snapshots. Must be thread-safe across
  /// ranks (called from every rank thread).
  std::function<void(int, int)> on_gemm_done;

  /// Live drift multiplier for this rank's modeled compute time at a given
  /// virtual time (device::drift_factor over the run's DriftPlan). Null =
  /// 1.0 everywhere — the exact static model. Applied at each compute
  /// quantum's start time; numeric kernels are unaffected (the simulated
  /// background load stretches modeled time only).
  std::function<double(double)> drift_factor;

  /// Partition epoch of this execution phase (0 for the initial plan, the
  /// recovery round otherwise). Folded into the blas pack-cache B-panel
  /// tags so a packed panel from a pre-re-partition layout can never be
  /// reused after operand coordinates change meaning.
  std::uint64_t partition_epoch = 0;

  /// Drift detector hook, invoked after every owned compute step with the
  /// step's predicted (static model incl. fault slowdowns) and observed
  /// (incl. drift) modeled durations. Returns true to confirm drift: the
  /// rank then *sheds* its remaining compute (skipping kernels and their
  /// clock charges) while still executing its full communication schedule,
  /// and raises sgmpi kDrift after the graph completes — peers finish
  /// undisturbed and the re-partition happens at the commit gate. Called
  /// from this rank's thread only.
  std::function<bool(const trace::StepSample&)> on_step;
};

/// Executes SummaGen on the calling rank.
///
/// `world` must have one rank per processor named in `spec`; `ap` is this
/// rank's abstract processor (its performance model prices the local
/// DGEMMs). `data` selects the plane: a numeric LocalData for this rank and
/// spec, or nullptr for the modeled plane. `contended` mirrors the paper's
/// simultaneous-load measurement methodology. `ft` (optional) wires the
/// fault-tolerant runner in: completed-cell tracking plus re-execution of
/// only the unfinished plan ops. Under a fault plan the execution polls for
/// fault events at op boundaries and may throw sgmpi::PeerFailedError /
/// sgmpi::RankCrashedError mid-run.
///
/// All ranks must call collectively with the same spec. Throws
/// std::invalid_argument on spec/world mismatches.
RankReport summagen_rank(sgmpi::Comm& world,
                         const partition::PartitionSpec& spec,
                         const device::AbstractProcessor& ap, LocalData* data,
                         bool contended = true,
                         const SummaGenOptions& options = {},
                         const FtContext* ft = nullptr);

}  // namespace summagen::core

// Strong-scaling table math for the cluster benches.
//
// The speedup/efficiency arithmetic lives here (not in bench/) so it is
// unit-testable: bench/cluster_scaling once divided by `node_counts.front()`
// scaled by `nodes`, which silently reported wrong speedups for any sweep
// not starting at one node (`--nodes 2,4`). The contract is now explicit —
// every configuration needs a true single-node measurement, and rows()
// refuses to fabricate one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/table.hpp"

namespace summagen::core {

/// One measured point of a strong-scaling sweep.
struct ScalingMeasurement {
  std::string name;       ///< configuration label (partitioner, engine, ...)
  std::int64_t nodes = 1;
  int ranks = 0;
  double exec_s = 0.0;
  double comp_s = 0.0;
  double comm_s = 0.0;
};

/// Speedup over the true single-node execution time.
double scaling_speedup(double single_node_exec_s, double exec_s);

/// Parallel efficiency in percent: 100 * speedup / nodes.
double scaling_efficiency_pct(double speedup, std::int64_t nodes);

/// Collects a sweep's measurements and derives speedup/efficiency against
/// each configuration's nodes==1 measurement.
class ScalingTable {
 public:
  /// Adds one measurement; a nodes==1 point becomes the configuration's
  /// baseline (the first one wins if measured repeatedly).
  void add(const ScalingMeasurement& m);

  bool has_baseline(const std::string& name) const;

  /// Configuration names (insertion order, deduplicated) that still lack a
  /// single-node measurement — the caller should measure nodes=1 for them
  /// before asking for rows().
  std::vector<std::string> missing_baselines() const;

  struct Row {
    ScalingMeasurement m;
    double speedup = 0.0;
    double efficiency_pct = 0.0;
  };

  /// Derived rows in insertion order. Throws std::logic_error naming the
  /// offending configuration when a baseline is missing — wrong speedups
  /// are not an output this table can produce.
  std::vector<Row> rows() const;

  /// The bench's printed table: header
  /// {nodes, p, partitioner, exec_s, comp_s, mpi_s, speedup, efficiency_%}.
  util::Table render(const std::string& title) const;

 private:
  std::vector<ScalingMeasurement> measurements_;
};

}  // namespace summagen::core

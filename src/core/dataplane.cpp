#include "src/core/dataplane.hpp"

#include <stdexcept>

namespace summagen::core {

LocalData::LocalData(const partition::PartitionSpec& spec, int rank,
                     const util::Matrix& a, const util::Matrix& b)
    : numeric_(true), rank_(rank) {
  if (a.rows() != spec.n || a.cols() != spec.n || b.rows() != spec.n ||
      b.cols() != spec.n) {
    throw std::invalid_argument("LocalData: global matrices must be n x n");
  }
  const auto roff = spec.row_offsets();
  const auto coff = spec.col_offsets();
  for (int bi = 0; bi < spec.subplda; ++bi) {
    for (int bj = 0; bj < spec.subpldb; ++bj) {
      if (spec.owner(bi, bj) != rank) continue;
      const std::int64_t h = spec.subph[static_cast<std::size_t>(bi)];
      const std::int64_t w = spec.subpw[static_cast<std::size_t>(bj)];
      const std::int64_t r0 = roff[static_cast<std::size_t>(bi)];
      const std::int64_t c0 = coff[static_cast<std::size_t>(bj)];
      a_parts_.emplace(std::make_pair(bi, bj),
                       util::extract_block(a, r0, c0, h, w));
      b_parts_.emplace(std::make_pair(bi, bj),
                       util::extract_block(b, r0, c0, h, w));
    }
  }
  c_rect_ = spec.covering(rank);
  c_ = util::Matrix(c_rect_.rows, c_rect_.cols);
}

const util::Matrix& LocalData::a_part(int bi, int bj) const {
  const auto it = a_parts_.find({bi, bj});
  if (it == a_parts_.end()) {
    throw std::out_of_range("LocalData: rank " + std::to_string(rank_) +
                            " does not own A(" + std::to_string(bi) + "," +
                            std::to_string(bj) + ")");
  }
  return it->second;
}

const util::Matrix& LocalData::b_part(int bi, int bj) const {
  const auto it = b_parts_.find({bi, bj});
  if (it == b_parts_.end()) {
    throw std::out_of_range("LocalData: rank " + std::to_string(rank_) +
                            " does not own B(" + std::to_string(bi) + "," +
                            std::to_string(bj) + ")");
  }
  return it->second;
}

bool LocalData::owns(int bi, int bj) const {
  return a_parts_.contains({bi, bj});
}

void LocalData::gather_c(const partition::PartitionSpec& spec,
                         util::Matrix& c_global) const {
  if (!numeric_) {
    throw std::logic_error("LocalData::gather_c on a modeled plane");
  }
  const auto roff = spec.row_offsets();
  const auto coff = spec.col_offsets();
  for (int bi = 0; bi < spec.subplda; ++bi) {
    for (int bj = 0; bj < spec.subpldb; ++bj) {
      if (spec.owner(bi, bj) != rank_) continue;
      const std::int64_t h = spec.subph[static_cast<std::size_t>(bi)];
      const std::int64_t w = spec.subpw[static_cast<std::size_t>(bj)];
      if (h == 0 || w == 0) continue;
      const std::int64_t r0 = roff[static_cast<std::size_t>(bi)];
      const std::int64_t c0 = coff[static_cast<std::size_t>(bj)];
      util::copy_matrix(
          c_global.data() + r0 * c_global.cols() + c0, c_global.cols(),
          c_.data() + (r0 - c_rect_.row0) * c_.cols() + (c0 - c_rect_.col0),
          c_.cols(), h, w);
    }
  }
}

}  // namespace summagen::core

#include "src/core/dataplane.hpp"

#include <stdexcept>
#include <string>

namespace summagen::core {

LocalData::LocalData(const partition::PartitionSpec& spec, int rank,
                     const util::Matrix& a, const util::Matrix& b,
                     util::Matrix* c_global)
    : numeric_(true), rank_(rank), a_(&a), b_(&b) {
  if (a.rows() != spec.n || a.cols() != spec.n || b.rows() != spec.n ||
      b.cols() != spec.n) {
    throw std::invalid_argument("LocalData: global matrices must be n x n");
  }
  if (c_global != nullptr &&
      (c_global->rows() != spec.n || c_global->cols() != spec.n)) {
    throw std::invalid_argument("LocalData: global C must be n x n");
  }
  const auto roff = spec.row_offsets();
  const auto coff = spec.col_offsets();
  for (int bi = 0; bi < spec.subplda; ++bi) {
    for (int bj = 0; bj < spec.subpldb; ++bj) {
      if (spec.owner(bi, bj) != rank) continue;
      partition::Rect r;
      r.row0 = roff[static_cast<std::size_t>(bi)];
      r.col0 = coff[static_cast<std::size_t>(bj)];
      r.rows = spec.subph[static_cast<std::size_t>(bi)];
      r.cols = spec.subpw[static_cast<std::size_t>(bj)];
      cells_.emplace(std::make_pair(bi, bj), r);
    }
  }
  c_rect_ = spec.covering(rank);
  if (c_global != nullptr) {
    c_in_place_ = true;
    c_view_ = util::block_view(*c_global, c_rect_.row0, c_rect_.col0,
                               c_rect_.rows, c_rect_.cols);
  } else {
    c_store_ =
        util::BufferPool::instance().acquire(c_rect_.rows * c_rect_.cols);
    c_view_ = util::MatrixView(c_store_.data(), c_rect_.rows, c_rect_.cols,
                               c_rect_.cols);
    c_view_.fill(0.0);
  }
}

const partition::Rect& LocalData::cell(const char* which, int bi,
                                       int bj) const {
  const auto it = cells_.find({bi, bj});
  if (it == cells_.end()) {
    throw std::out_of_range("LocalData: rank " + std::to_string(rank_) +
                            " does not own " + which + "(" +
                            std::to_string(bi) + "," + std::to_string(bj) +
                            ")");
  }
  return it->second;
}

util::ConstMatrixView LocalData::a_part(int bi, int bj) const {
  const partition::Rect& r = cell("A", bi, bj);
  return util::block_view(*a_, r.row0, r.col0, r.rows, r.cols);
}

util::ConstMatrixView LocalData::b_part(int bi, int bj) const {
  const partition::Rect& r = cell("B", bi, bj);
  return util::block_view(*b_, r.row0, r.col0, r.rows, r.cols);
}

bool LocalData::owns(int bi, int bj) const {
  return cells_.contains({bi, bj});
}

void LocalData::gather_c(const partition::PartitionSpec& /*spec*/,
                         util::Matrix& c_global) const {
  if (!numeric_) {
    throw std::logic_error("LocalData::gather_c on a modeled plane");
  }
  if (c_in_place_) return;  // owned cells were written into C directly
  for (const auto& [key, r] : cells_) {
    if (r.rows == 0 || r.cols == 0) continue;
    util::copy_matrix(
        c_global.data() + r.row0 * c_global.cols() + r.col0, c_global.cols(),
        c_view_.data() + (r.row0 - c_rect_.row0) * c_view_.ld() +
            (r.col0 - c_rect_.col0),
        c_view_.ld(), r.rows, r.cols);
  }
}

}  // namespace summagen::core

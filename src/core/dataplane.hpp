// Per-rank local matrix storage for SummaGen.
//
// SummaGen assumes the matrices are pre-distributed: each rank stores
// exactly the sub-partitions of A and B it owns, and produces the C
// sub-partitions it owns. LocalData is that store, in two flavours
// (DESIGN.md §5.2):
//   * numeric - real doubles; scatter/gather against global matrices lets
//     tests verify SummaGen's C against a serial reference bit-for-bit in
//     structure (up to fp reassociation);
//   * modeled - no storage at all; the algorithm still runs every loop and
//     communication with null payloads, so figure benches can execute the
//     paper's N = 25600..38416 without 10+ GB of allocation.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "src/partition/spec.hpp"
#include "src/util/matrix.hpp"

namespace summagen::core {

/// Local matrices of one rank under a given PartitionSpec.
class LocalData {
 public:
  /// Modeled plane: no buffers.
  LocalData() = default;

  /// Numeric plane: extracts `rank`'s owned sub-partitions of `a` and `b`
  /// (both n x n per `spec`) and allocates the local C (covering-rectangle
  /// extent, zero-initialised).
  LocalData(const partition::PartitionSpec& spec, int rank,
            const util::Matrix& a, const util::Matrix& b);

  bool numeric() const { return numeric_; }
  int rank() const { return rank_; }

  /// Owned sub-partition of A / B at grid cell (bi, bj); throws if not
  /// owned or modeled-only.
  const util::Matrix& a_part(int bi, int bj) const;
  const util::Matrix& b_part(int bi, int bj) const;
  bool owns(int bi, int bj) const;

  /// Local C buffer spanning the covering rectangle (numeric only).
  util::Matrix& c() { return c_; }
  const util::Matrix& c() const { return c_; }
  const partition::Rect& c_rect() const { return c_rect_; }

  /// Writes this rank's owned C sub-partitions into the global matrix.
  /// Unowned cells inside the covering rectangle are left untouched.
  void gather_c(const partition::PartitionSpec& spec, util::Matrix& c_global)
      const;

 private:
  bool numeric_ = false;
  int rank_ = -1;
  std::map<std::pair<int, int>, util::Matrix> a_parts_;
  std::map<std::pair<int, int>, util::Matrix> b_parts_;
  util::Matrix c_;
  partition::Rect c_rect_;
};

}  // namespace summagen::core

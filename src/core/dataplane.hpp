// Per-rank local matrix storage for SummaGen.
//
// SummaGen assumes the matrices are pre-distributed: each rank stores
// exactly the sub-partitions of A and B it owns, and produces the C
// sub-partitions it owns. LocalData is that store, in two flavours
// (DESIGN.md §5.2):
//   * numeric - A/B sub-partitions are strided views in place over the
//     global operands (zero copies, zero allocation); the local C is either
//     a pooled private buffer over the covering rectangle or — when the
//     caller passes the global C — a window viewed directly into it, in
//     which case gather_c is a no-op because every owned cell was written
//     in place;
//   * modeled - no storage at all; the algorithm still runs every loop and
//     communication with null payloads, so figure benches can execute the
//     paper's N = 25600..38416 without 10+ GB of allocation.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "src/partition/spec.hpp"
#include "src/util/buffer_pool.hpp"
#include "src/util/matrix.hpp"
#include "src/util/matrix_view.hpp"

namespace summagen::core {

/// Local matrices of one rank under a given PartitionSpec.
///
/// Numeric instances view the caller's global A/B (and optionally C)
/// in place, so those matrices must outlive the LocalData.
class LocalData {
 public:
  /// Modeled plane: no buffers.
  LocalData() = default;

  /// Numeric plane: records `rank`'s owned sub-partitions of `a` and `b`
  /// as in-place views (both matrices are n x n per `spec`). When
  /// `c_global` is null the local C is a pooled covering-rectangle buffer
  /// (zero-filled); when non-null the local C is a window into `c_global`
  /// — owned C cells are disjoint across ranks, so every rank may write
  /// its cells directly and `gather_c` becomes a no-op. Fault-tolerant
  /// phases must use the private-C form: a re-executed phase accumulates
  /// from zero, which an in-place global C cannot provide.
  LocalData(const partition::PartitionSpec& spec, int rank,
            const util::Matrix& a, const util::Matrix& b,
            util::Matrix* c_global = nullptr);

  bool numeric() const { return numeric_; }
  int rank() const { return rank_; }

  /// Owned sub-partition of A / B at grid cell (bi, bj), viewed in place
  /// inside the global operand; throws if not owned or modeled-only.
  util::ConstMatrixView a_part(int bi, int bj) const;
  util::ConstMatrixView b_part(int bi, int bj) const;
  bool owns(int bi, int bj) const;

  /// Local C spanning the covering rectangle (numeric only).
  util::MatrixView c() { return c_view_; }
  util::ConstMatrixView c() const { return c_view_; }
  const partition::Rect& c_rect() const { return c_rect_; }

  /// True when the local C writes land directly in the caller's global C.
  bool c_in_place() const { return c_in_place_; }

  /// Writes this rank's owned C sub-partitions into the global matrix.
  /// Unowned cells inside the covering rectangle are left untouched. A
  /// no-op for in-place C (the cells are already there).
  void gather_c(const partition::PartitionSpec& spec, util::Matrix& c_global)
      const;

 private:
  const partition::Rect& cell(const char* which, int bi, int bj) const;

  bool numeric_ = false;
  int rank_ = -1;
  const util::Matrix* a_ = nullptr;
  const util::Matrix* b_ = nullptr;
  std::map<std::pair<int, int>, partition::Rect> cells_;
  util::PooledBuffer c_store_;
  util::MatrixView c_view_;
  partition::Rect c_rect_;
  bool c_in_place_ = false;
};

}  // namespace summagen::core

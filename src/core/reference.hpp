// Serial reference for verification.
#pragma once

#include <cstdint>

#include "src/blas/gemm.hpp"
#include "src/util/matrix.hpp"

namespace summagen::core {

/// C = A * B with the blocked serial kernel — the oracle SummaGen results
/// are checked against in tests and numeric experiments.
util::Matrix reference_multiply(const util::Matrix& a, const util::Matrix& b);

/// Tolerance scale for comparing two n x n products of matrices with
/// entries in [-1, 1]: |error| grows like n * eps under reassociation.
double gemm_tolerance(std::int64_t n);

}  // namespace summagen::core

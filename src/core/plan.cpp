#include "src/core/plan.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <tuple>
#include <utility>

namespace summagen::core {
namespace {

int root_index(const std::vector<int>& members, int world_rank) {
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == world_rank) return static_cast<int>(i);
  }
  throw std::logic_error("summagen: sub-partition owner not in its row/col");
}

/// Emits the panel broadcasts (or the local copies, for a single owner) of
/// one sub-partition row of A (is_a) or column of B.
void emit_line(const partition::PartitionSpec& spec,
               const SummaGenOptions& options, bool is_a, int line,
               ExecutionPlan& plan) {
  const std::int64_t line_extent =
      is_a ? spec.subph[static_cast<std::size_t>(line)]
           : spec.subpw[static_cast<std::size_t>(line)];
  if (line_extent == 0) return;
  const std::vector<int> owners =
      is_a ? spec.ranks_in_row(line) : spec.ranks_in_col(line);
  const int cross = is_a ? spec.subpldb : spec.subplda;

  for (int k = 0; k < cross; ++k) {
    const int bi = is_a ? line : k;
    const int bj = is_a ? k : line;
    const std::int64_t h = spec.subph[static_cast<std::size_t>(bi)];
    const std::int64_t w = spec.subpw[static_cast<std::size_t>(bj)];
    if (h == 0 || w == 0) continue;

    if (owners.size() == 1) {
      plan.copy_ops.push_back({is_a, bi, bj});
      continue;
    }

    const int owner = spec.owner(bi, bj);
    const std::int64_t panel =
        options.bcast_panel_rows > 0 ? options.bcast_panel_rows : h;
    for (std::int64_t p0 = 0; p0 < h; p0 += panel) {
      CommOp op;
      op.is_a = is_a;
      op.bi = bi;
      op.bj = bj;
      op.p0 = p0;
      op.rows = std::min(panel, h - p0);
      op.width = w;
      op.bytes = op.rows * w * static_cast<std::int64_t>(sizeof(double));
      op.owners = owners;
      op.root = root_index(owners, owner);
      op.owner = owner;
      plan.comm_ops.push_back(std::move(op));
    }
  }
}

/// k-interval of one B panel: panel rows are rows of B, i.e. positions
/// along the DGEMM's shared dimension.
struct BSpan {
  std::int64_t k0 = 0;
  std::int64_t k1 = 0;
  int op_index = -1;
};

/// Derives the k-chunks of `g`: walks [0, n) through the refinement of the
/// A column-block boundaries and the B panel intervals of column `g.bj`,
/// assigning each cell the latest comm_ops index it reads from, and merges
/// adjacent cells with equal dependency. Both dependency step functions are
/// nondecreasing in k (comm_ops emits each line's payloads in ascending-k
/// order), so the merged chunks have strictly increasing `dep`.
void build_chunks(const partition::PartitionSpec& spec,
                  const std::vector<std::int64_t>& coff,
                  const std::map<std::pair<int, int>, int>& last_a,
                  const std::vector<BSpan>& b_spans, GemmOp& g) {
  std::size_t si = 0;
  int cb = 0;
  std::int64_t k = 0;
  while (k < spec.n) {
    while (coff[static_cast<std::size_t>(cb) + 1] <= k) ++cb;
    const auto a_it = last_a.find({g.bi, cb});
    const int a_dep = a_it == last_a.end() ? -1 : a_it->second;

    int b_dep = -1;
    std::int64_t b_end = spec.n;
    while (si < b_spans.size() && b_spans[si].k1 <= k) ++si;
    if (si < b_spans.size()) {
      if (b_spans[si].k0 <= k) {
        b_dep = b_spans[si].op_index;
        b_end = b_spans[si].k1;
      } else {
        b_end = b_spans[si].k0;  // locally-owned gap before the next panel
      }
    }

    const std::int64_t end =
        std::min(coff[static_cast<std::size_t>(cb) + 1], b_end);
    const int dep = std::max(a_dep, b_dep);
    if (!g.chunks.empty() && g.chunks.back().dep == dep) {
      g.chunks.back().k1 = end;
    } else {
      g.chunks.push_back({k, end, dep});
    }
    k = end;
  }
}

}  // namespace

ExecutionPlan build_plan(const partition::PartitionSpec& spec,
                         const SummaGenOptions& options) {
  ExecutionPlan plan;

  // Eager global order: every A sub-partition row (Fig. 2), then every B
  // sub-partition column (Fig. 3).
  for (int bi = 0; bi < spec.subplda; ++bi) {
    emit_line(spec, options, /*is_a=*/true, bi, plan);
  }
  for (int bj = 0; bj < spec.subpldb; ++bj) {
    emit_line(spec, options, /*is_a=*/false, bj, plan);
  }

  // Dependency indices for chunk derivation: the last panel of every
  // broadcast A sub-partition, and the k-interval of every B panel.
  const auto roff = spec.row_offsets();
  const auto coff = spec.col_offsets();
  std::map<std::pair<int, int>, int> last_a;
  std::map<int, std::vector<BSpan>> b_spans;
  for (std::size_t i = 0; i < plan.comm_ops.size(); ++i) {
    const CommOp& op = plan.comm_ops[i];
    if (op.is_a) {
      last_a[{op.bi, op.bj}] = static_cast<int>(i);
    } else {
      const std::int64_t k0 = roff[static_cast<std::size_t>(op.bi)] + op.p0;
      b_spans[op.bj].push_back({k0, k0 + op.rows, static_cast<int>(i)});
    }
  }
  const std::vector<BSpan> no_spans;

  for (int bi = 0; bi < spec.subplda; ++bi) {
    const std::int64_t h = spec.subph[static_cast<std::size_t>(bi)];
    if (h == 0) continue;
    for (int bj = 0; bj < spec.subpldb; ++bj) {
      const std::int64_t w = spec.subpw[static_cast<std::size_t>(bj)];
      if (w == 0) continue;
      GemmOp g;
      g.bi = bi;
      g.bj = bj;
      g.owner = spec.owner(bi, bj);
      const auto bs = b_spans.find(bj);
      build_chunks(spec, coff, last_a,
                   bs == b_spans.end() ? no_spans : bs->second, g);
      plan.gemm_ops.push_back(std::move(g));
    }
  }
  return plan;
}

}  // namespace summagen::core

// Classic SUMMA (van de Geijn & Watts) — the rectangular, homogeneous-grid
// algorithm SummaGen generalises (paper Section III-D/E: SUMMA is
// communication-optimal for square PMM on a 2D grid; Elemental builds on
// it). Implemented here as a baseline and cross-check:
//
//  * processors form a pr x pc grid (row-major rank order), each owning a
//    contiguous block of A, B and C;
//  * computation proceeds in panels of width b along the k dimension: the
//    owner column broadcasts its A panel along each processor row, the
//    owner row broadcasts its B panel down each processor column, then
//    every processor performs a rank-b update of its C block;
//  * like SummaGen, it runs on the numeric plane (real arithmetic,
//    verifiable) or the modeled plane (virtual time only).
//
// Unlike SummaGen's one-shot whole-sub-partition broadcasts, SUMMA's
// panelled schedule bounds the working buffers to O(b * n / p) — the
// classic memory/latency trade-off the panel-width bench explores.
#pragma once

#include <cstdint>

#include "src/core/summagen.hpp"
#include "src/device/device.hpp"
#include "src/mpi/mpi.hpp"
#include "src/util/matrix.hpp"

namespace summagen::core {

/// Grid and panel configuration of a SUMMA run.
struct SummaConfig {
  int pr = 2;               ///< processor grid rows
  int pc = 2;               ///< processor grid columns
  std::int64_t panel = 256; ///< k-panel width b
  /// Which schedule executes the step task graph. SUMMA's graph is a
  /// chain (panel workspaces are reused across steps), so every schedule
  /// degenerates to the program order: results, counters, and virtual
  /// timing are identical across schedulers — asserted by tests.
  Scheduler scheduler = Scheduler::kEager;
};

/// Block extents of rank (i, j) in an n x n matrix over a pr x pc grid
/// (balanced split: the first n % pr rows of the grid get one extra row).
struct SummaBlock {
  std::int64_t row0 = 0, col0 = 0, rows = 0, cols = 0;
};
SummaBlock summa_block(std::int64_t n, const SummaConfig& config, int rank);

/// Numeric per-rank storage: this rank's A/B blocks in, C block out.
class SummaLocalData {
 public:
  SummaLocalData(std::int64_t n, const SummaConfig& config, int rank,
                 const util::Matrix& a, const util::Matrix& b);

  const util::Matrix& a_block() const { return a_; }
  const util::Matrix& b_block() const { return b_; }
  util::Matrix& c_block() { return c_; }
  const SummaBlock& extent() const { return extent_; }

  /// Writes this rank's C block into the global matrix.
  void gather_c(util::Matrix& c_global) const;

 private:
  SummaBlock extent_;
  util::Matrix a_, b_, c_;
};

/// Per-rank accounting of one SUMMA execution.
struct SummaReport {
  int steps = 0;                 ///< number of k panels
  int bcasts = 0;
  std::int64_t bcast_bytes = 0;
  double mpi_time_s = 0.0;
  std::int64_t flops = 0;
};

/// Executes SUMMA on the calling rank. `world` must have exactly
/// config.pr * config.pc ranks; `data` selects the plane (nullptr =
/// modeled). Throws std::invalid_argument on grid/world mismatches.
SummaReport summa_rank(sgmpi::Comm& world, std::int64_t n,
                       const SummaConfig& config,
                       const device::AbstractProcessor& ap,
                       SummaLocalData* data, bool contended = true);

}  // namespace summagen::core

#include "src/core/drift.hpp"

#include <stdexcept>

#include "src/partition/spec_io.hpp"

namespace summagen::core {

DriftController::DriftController(const RepartitionOptions& options,
                                 int drift_round)
    : options_(options),
      warmup_(options.warmup_steps),
      ewma_(options.ewma_alpha) {
  if (options_.threshold <= 0.0) {
    throw std::invalid_argument("DriftController: threshold must be > 0");
  }
  if (options_.hysteresis < 1) {
    throw std::invalid_argument("DriftController: hysteresis must be >= 1");
  }
  if (options_.ewma_alpha <= 0.0 || options_.ewma_alpha > 1.0) {
    throw std::invalid_argument(
        "DriftController: ewma_alpha must be in (0, 1]");
  }
  // Exponential backoff: each drift-triggered re-partition doubles the next
  // phase's warmup, so a thrashing load pattern converges to the static
  // plan instead of looping.
  for (int r = 0; r < drift_round && warmup_ < (1 << 20); ++r) warmup_ *= 2;
}

bool DriftController::observe(const trace::StepSample& sample) {
  ++steps_;
  ewma_.update(trace::step_ratio(sample));
  if (confirmed_ || steps_ <= warmup_) return false;
  const double hi = 1.0 + options_.threshold;
  const double ratio = ewma_.value();
  // Both directions are drift: a slowed device starves the plan, a sped-up
  // one (e.g. background load ending) leaves capability idle.
  if (ratio > hi || ratio < 1.0 / hi) {
    ++streak_;
  } else {
    streak_ = 0;
  }
  if (streak_ >= options_.hysteresis) {
    confirmed_ = true;
    return true;
  }
  return false;
}

device::DriftPlan parse_drift_plan(const std::string& text) {
  device::DriftPlan plan;
  int item_index = 0;
  const auto fail = [&](const std::string& key, const std::string& item,
                        const std::string& why) {
    throw partition::SpecParseError(
        item_index, key,
        "parse_drift_plan: '" + item + "': " + why +
            " (expected <kind>@<t>:<rank>[x<factor>][/<arg>], "
            "kind = step|ramp|periodic)");
  };
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string item = text.substr(pos, comma - pos);
    pos = comma + 1;
    ++item_index;
    if (item.empty()) {
      if (text.empty()) break;
      fail("", text, "empty event");
    }

    const std::size_t at = item.find('@');
    const std::size_t colon = item.find(':', at == std::string::npos ? 0 : at);
    if (at == std::string::npos || colon == std::string::npos) {
      fail("", item, "missing '@' or ':'");
    }
    const std::string kind = item.substr(0, at);
    const std::string when = item.substr(at + 1, colon - at - 1);
    std::string rank = item.substr(colon + 1);
    std::string arg;
    const std::size_t slash = rank.find('/');
    if (slash != std::string::npos) {
      arg = rank.substr(slash + 1);
      rank = rank.substr(0, slash);
    }
    std::string factor;
    const std::size_t x = rank.find('x');
    if (x != std::string::npos) {
      factor = rank.substr(x + 1);
      rank = rank.substr(0, x);
    }

    device::DriftEvent ev;
    if (kind == "step") {
      ev.kind = device::DriftKind::kStep;
      if (!arg.empty()) fail("kind", item, "step takes no '/' argument");
    } else if (kind == "ramp") {
      ev.kind = device::DriftKind::kRamp;
      if (arg.empty()) fail("duration", item, "ramp needs '/<duration_s>'");
    } else if (kind == "periodic") {
      ev.kind = device::DriftKind::kPeriodic;
      if (arg.empty()) fail("period", item, "periodic needs '/<period_s>'");
    } else {
      fail("kind", item, "unknown kind '" + kind + "'");
    }

    const auto number = [&](const std::string& key, const std::string& s,
                            double lo) {
      double v = 0.0;
      try {
        std::size_t used = 0;
        v = std::stod(s, &used);
        if (used != s.size()) throw std::invalid_argument(s);
      } catch (const std::exception&) {
        fail(key, item, "bad number '" + s + "'");
      }
      if (v < lo) {
        fail(key, item, "'" + s + "' must be >= " + std::to_string(lo));
      }
      return v;
    };
    ev.at_vtime = number("at", when, 0.0);
    const double r = number("rank", rank, 0.0);
    ev.rank = static_cast<int>(r);
    if (static_cast<double>(ev.rank) != r) {
      fail("rank", item, "rank must be an integer");
    }
    if (!factor.empty()) {
      ev.factor = number("factor", factor, 0.0);
      if (ev.factor <= 0.0) fail("factor", item, "factor must be > 0");
    }
    if (ev.kind == device::DriftKind::kRamp) {
      ev.duration_s = number("duration", arg, 0.0);
      if (ev.duration_s <= 0.0) fail("duration", item, "duration must be > 0");
    } else if (ev.kind == device::DriftKind::kPeriodic) {
      ev.period_s = number("period", arg, 0.0);
      if (ev.period_s <= 0.0) fail("period", item, "period must be > 0");
    }
    plan.events.push_back(ev);
    if (comma == text.size()) break;
  }
  return plan;
}

RepartitionOptions parse_repartition_options(const std::string& text) {
  RepartitionOptions options;
  if (text.empty() || text == "on") {
    options.enabled = true;
    return options;
  }
  if (text == "off") return options;

  options.enabled = true;
  int item_index = 0;
  const auto fail = [&](const std::string& key, const std::string& item,
                        const std::string& why) {
    throw partition::SpecParseError(
        item_index, key,
        "parse_repartition_options: '" + item + "': " + why +
            " (expected on|off or key=value list over threshold, "
            "hysteresis, alpha, warmup, budget)");
  };
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string item = text.substr(pos, comma - pos);
    pos = comma + 1;
    ++item_index;
    if (item.empty()) fail("", text, "empty item");

    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) fail("", item, "missing '='");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    const auto number = [&](double lo) {
      double v = 0.0;
      try {
        std::size_t used = 0;
        v = std::stod(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        fail(key, item, "bad number '" + value + "'");
      }
      if (v < lo) {
        fail(key, item,
             "'" + value + "' must be >= " + std::to_string(lo));
      }
      return v;
    };
    if (key == "threshold") {
      options.threshold = number(0.0);
      if (options.threshold <= 0.0) fail(key, item, "threshold must be > 0");
    } else if (key == "hysteresis") {
      options.hysteresis = static_cast<int>(number(1.0));
    } else if (key == "alpha") {
      options.ewma_alpha = number(0.0);
      if (options.ewma_alpha <= 0.0 || options.ewma_alpha > 1.0) {
        fail(key, item, "alpha must be in (0, 1]");
      }
    } else if (key == "warmup") {
      options.warmup_steps = static_cast<int>(number(0.0));
    } else if (key == "budget") {
      options.max_repartitions = static_cast<int>(number(0.0));
    } else {
      fail(key, item, "unknown key '" + key + "'");
    }
    if (comma == text.size()) break;
  }
  return options;
}

}  // namespace summagen::core

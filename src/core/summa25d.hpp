// 2.5D matrix multiplication (Solomonik & Demmel, Euro-Par 2011) — the
// communication-optimal algorithm the paper's related work (Section III-D)
// holds up as the homogeneous frontier.
//
// Processors form a q x q x c grid: c replicated "layers" of a q x q SUMMA
// grid. Layer 0 owns the block-distributed A, B and the final C.
//
//   1. Replication: each (i, j) block of A and B is broadcast from layer 0
//      down the c-deep layer communicator.
//   2. Each layer runs the SUMMA panel loop over its 1/c share of the k
//      dimension (layer l handles k in [l*n/c, (l+1)*n/c)) — the classic
//      bandwidth-for-memory trade: per-processor broadcast traffic drops
//      by ~c because each layer broadcasts only its own panels.
//   3. The partial C blocks are sum-reduced across the layer communicator.
//
// c = 1 degenerates to classic SUMMA exactly. Like the other algorithms
// here it runs on the numeric plane (real arithmetic, verified) or the
// modeled plane (virtual time only).
#pragma once

#include <cstdint>

#include "src/core/summa.hpp"
#include "src/device/device.hpp"
#include "src/mpi/mpi.hpp"
#include "src/util/matrix.hpp"

namespace summagen::core {

/// Grid configuration: q*q*c ranks, rank = (l*q + i)*q + j.
struct Summa25dConfig {
  int q = 2;                ///< square grid edge per layer
  int c = 1;                ///< replication factor (layers)
  std::int64_t panel = 256; ///< k-panel width within a layer's share
  /// Schedule of the step task graph (see SummaConfig::scheduler): the
  /// replication -> step chain -> reduction graph is a chain, so all
  /// schedules execute it identically.
  Scheduler scheduler = Scheduler::kEager;
};

/// Numeric per-rank storage. Layer 0 ranks hold real A/B blocks; other
/// layers allocate receive buffers. Every rank accumulates a partial C.
class Summa25dLocalData {
 public:
  Summa25dLocalData(std::int64_t n, const Summa25dConfig& config, int rank,
                    const util::Matrix& a, const util::Matrix& b);

  util::Matrix& a_block() { return a_; }
  util::Matrix& b_block() { return b_; }
  util::Matrix& c_block() { return c_; }
  const SummaBlock& extent() const { return extent_; }
  bool on_layer_zero() const { return layer_zero_; }

  /// Writes this rank's C block into the global matrix (layer 0 only;
  /// throws otherwise — other layers hold partial sums pre-reduce and the
  /// reduced copy post-reduce, but layer 0 is the canonical owner).
  void gather_c(util::Matrix& c_global) const;

 private:
  bool layer_zero_ = false;
  SummaBlock extent_;
  util::Matrix a_, b_, c_;
};

struct Summa25dReport {
  int steps = 0;
  int bcasts = 0;
  std::int64_t bcast_bytes = 0;       ///< SUMMA panel broadcasts
  std::int64_t replication_bytes = 0; ///< step-1 block broadcasts
  std::int64_t reduce_bytes = 0;      ///< step-3 C reduction
  double mpi_time_s = 0.0;
  std::int64_t flops = 0;
};

/// Executes 2.5D MM on the calling rank. `world` must have exactly
/// q*q*c ranks. `data` selects the plane (nullptr = modeled).
Summa25dReport summa25d_rank(sgmpi::Comm& world, std::int64_t n,
                             const Summa25dConfig& config,
                             const device::AbstractProcessor& ap,
                             Summa25dLocalData* data, bool contended = true);

}  // namespace summagen::core

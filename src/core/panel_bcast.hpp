// Shared strided-panel broadcast for the SUMMA-family algorithms.
//
// Classic SUMMA and 2.5D both walk the k dimension in panels of width b,
// broadcasting A's columns [k0, k0+b) along processor rows and B's rows
// down processor columns. When block extents are uneven a panel may
// straddle two owner blocks, so it is split into segments at the owner
// boundaries of a balanced 1D distribution. This logic used to exist four
// times (A/B x summa/summa25d), each staging through a compact scratch
// vector; it now lives here once, on top of sgmpi's strided bcast_panel,
// which moves the doubles directly between the owner's block and every
// rank's workspace with no intermediate packing.
#pragma once

#include <algorithm>
#include <cstdint>

#include "src/mpi/mpi.hpp"
#include "src/util/matrix_view.hpp"

namespace summagen::core {

/// Balanced 1D split of `extent` over `parts`: the first `extent % parts`
/// parts get one extra element. Offset of part `index` (`index == parts`
/// yields `extent`).
inline std::int64_t balanced_part_offset(std::int64_t extent, int parts,
                                         int index) {
  const std::int64_t base = extent / parts;
  const std::int64_t extra = extent % parts;
  return base * index + std::min<std::int64_t>(index, extra);
}

/// Size of part `index` of the balanced split.
inline std::int64_t balanced_part_size(std::int64_t extent, int parts,
                                       int index) {
  return balanced_part_offset(extent, parts, index + 1) -
         balanced_part_offset(extent, parts, index);
}

/// Which operand the panel slices: A panels are `extent x seg` column
/// bands landing at column (k - k0) of the workspace; B panels are
/// `seg x extent` row bands landing at row (k - k0).
enum class PanelAxis { kA, kB };

/// Communication side effects of one panel broadcast, for the caller's
/// report accumulation.
struct PanelBcastStats {
  int bcasts = 0;           ///< broadcasts issued (one per owner segment)
  std::int64_t bytes = 0;   ///< payload bytes across those broadcasts
  double mpi_time_s = 0.0;  ///< virtual seconds blocked in them
};

/// Broadcasts the k-panel [k0, k0+bcur) of A (axis kA) or B (axis kB)
/// across `comm`, splitting at the owner boundaries of the balanced 1D
/// split of [0, n) over `parts` (root within `comm` = part index).
///
/// Numeric plane: `block` is this rank's local operand block (its k axis
/// covers the rank's own part) and `dst` is the workspace panel — extent
/// x bcur for A, bcur x extent for B. Owners source segments straight
/// from `block` and every rank's segment lands in `dst`; no staging
/// copies on either side. Modeled plane: pass empty views — only the
/// virtual clock and the counters move.
///
/// parts == 1 degenerates to a direct local copy (numeric) or a no-op
/// (modeled) with no broadcasts counted, matching the historical inline
/// code paths.
PanelBcastStats bcast_k_panel(sgmpi::Comm& comm, PanelAxis axis,
                              std::int64_t n, int parts, int my_index,
                              std::int64_t extent, std::int64_t k0,
                              std::int64_t bcur, util::ConstMatrixView block,
                              util::MatrixView dst);

}  // namespace summagen::core

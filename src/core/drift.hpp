// Online drift detection and re-partitioning policy (DESIGN.md §5.13).
//
// The self-adaptable line of Lastovetsky/Reddy/Rychkov/Clarke argues that a
// partition must be re-derived from *live-measured* speeds when the
// platform drifts away from its static model. The pieces here are the pure,
// deterministic policy layer:
//
//   * DriftController — a per-rank detector over the stream of compute-step
//     observations (trace::StepSample). Each step's observed/predicted
//     ratio feeds an EWMA; after a warmup the controller confirms drift
//     when the EWMA stays past the relative threshold for `hysteresis`
//     consecutive steps, so transient noise never triggers. Confirmation
//     is a pure function of the rank's own observation stream — every run
//     of the same schedule confirms at the same step.
//   * RepartitionOptions — the thresholds, the bounded re-partition budget
//     (max_repartitions) and the exponential warmup backoff that makes a
//     thrashing load pattern degrade gracefully to the static plan.
//   * parse_drift_plan / parse_repartition_options — the `--drift` /
//     `--repartition` CLI grammars, raising partition::SpecParseError with
//     item/key attribution (the spec_io error discipline).
#pragma once

#include <string>

#include "src/device/drift.hpp"
#include "src/trace/step_timing.hpp"

namespace summagen::core {

/// Policy knobs of the online re-partitioning loop.
struct RepartitionOptions {
  bool enabled = false;

  /// Relative imbalance that counts as drift: a step counts against the
  /// hysteresis when the smoothed observed/predicted ratio exceeds
  /// 1 + threshold (or falls below 1 / (1 + threshold) — a device speeding
  /// up is drift too).
  double threshold = 0.25;

  /// Consecutive over-threshold steps required to confirm (debounce).
  int hysteresis = 3;

  /// EWMA smoothing factor over the per-step ratio, in (0, 1].
  double ewma_alpha = 0.25;

  /// Steps ignored at the start of every phase before the detector arms.
  /// Later drift-triggered phases double it each round (backoff), so a
  /// thrashing pattern re-partitions geometrically less often.
  int warmup_steps = 4;

  /// Bounded budget: total drift-triggered re-partitions per run. Once
  /// spent, the run degrades to the (last) static plan.
  int max_repartitions = 2;
};

/// Per-rank drift detector for one execution phase. Deterministic: state
/// depends only on the observation sequence.
class DriftController {
 public:
  /// `drift_round` is the number of drift-triggered re-partitions already
  /// performed; warmup doubles with each (exponential backoff).
  DriftController(const RepartitionOptions& options, int drift_round);

  /// Feeds one compute-step observation. Returns true exactly once, on the
  /// step that confirms sustained drift; afterwards the controller stays
  /// confirmed and returns false.
  bool observe(const trace::StepSample& sample);

  /// Smoothed observed/predicted ratio (1.0 before any observation) — the
  /// live slowdown factor of this rank, used to correct its weight at
  /// re-partition time.
  double smoothed_ratio() const noexcept { return ewma_.value(); }

  bool confirmed() const noexcept { return confirmed_; }
  int steps() const noexcept { return steps_; }

 private:
  RepartitionOptions options_;
  int warmup_;
  trace::EwmaTracker ewma_;
  int steps_ = 0;
  int streak_ = 0;
  bool confirmed_ = false;
};

/// Parses the `--drift` CLI syntax into a device::DriftPlan. Grammar: a
/// comma-separated list of events, each `<kind>@<t>:<rank>[x<factor>][/<arg>]`:
///
///   step@0.5:1x2.5        rank 1 slows 2.5x from virtual time 0.5 s
///   ramp@0.5:1x3/0.2      rank 1 ramps linearly to 3x over 0.2 s
///   periodic@0:2x2/0.1    rank 2 alternates 2x / 1x with period 0.1 s
///
/// `x<factor>` defaults to 2.0. `/<arg>` is the ramp duration or the
/// periodic period (seconds) and is required for those kinds, rejected for
/// step. Throws partition::SpecParseError with the 1-based event index as
/// the line and the offending field as the key. Rank-range validation
/// happens at run time.
device::DriftPlan parse_drift_plan(const std::string& text);

/// Parses the `--repartition` CLI syntax: "on" / "off", or a
/// comma-separated `key=value` list (which implies "on") over
///   threshold=<rel>  hysteresis=<steps>  alpha=<ewma>  warmup=<steps>
///   budget=<count>
/// e.g. "threshold=0.3,hysteresis=4,budget=1". Throws
/// partition::SpecParseError with the 1-based item index as the line and
/// the key name as the key.
RepartitionOptions parse_repartition_options(const std::string& text);

}  // namespace summagen::core

// Schedules of the task graph (src/core/taskgraph/taskgraph.hpp).
//
// One executor, three schedules — all legal topological orders of the same
// graph, so they move the same bytes and accumulate every C element in the
// same ascending-k order (bit-identity per SIMD tier):
//
//  * kProgram: ascending node id — the construction (eager) order. Comm
//    nodes run blocking; consecutive kGemm chunk chains of one op may be
//    fused into a single whole-kernel call (run_fused), reproducing the
//    historical eager executor's call sequence and virtual timing exactly.
//  * kLazy: local nodes in ascending id; each GEMM chunk first completes
//    the posted comm nodes up to its last comm dependency, keeping at most
//    `window` broadcasts in flight — the historical pipelined schedule.
//  * kDataflow: ready-set driven. Comm nodes are posted ahead up to
//    `window` and completed in ascending id (so subgroup collective order
//    is preserved); whenever any local node has all dependencies
//    satisfied, the lowest-id ready node runs. The rank only blocks in a
//    comm completion when nothing is computable — compute never waits on a
//    broadcast another chunk could hide.
//
// Determinism: all three schedules are functions of the graph structure
// alone (ready-set ties break by lowest id, completions are in-order), so
// a run's schedule — and with it the virtual timeline — is exactly
// reproducible.
//
// Rank projection: the executor runs one rank. Local nodes execute iff
// node.owner == rank; comm nodes iff rank is in node.owners; dependencies
// on nodes this rank cannot observe (another rank's local work) are
// treated as satisfied — cross-rank ordering is what the collectives
// themselves enforce.
//
// Node bodies and the shared pool: per-rank virtual time is a serial
// resource, so the executor runs node bodies on the rank thread; the
// compute fan-out happens *inside* GEMM nodes, whose kernels run on the
// process-wide sgpool (src/pool) like every other compute path. The
// schedule-level concurrency lives on the virtual communication lane:
// posted comm nodes ride it until completed.
#pragma once

#include <functional>

#include "src/core/summagen.hpp"
#include "src/core/taskgraph/taskgraph.hpp"
#include "src/mpi/mpi.hpp"

namespace summagen::core::taskgraph {

enum class GraphSchedule {
  kProgram,   ///< ascending node id (the eager order)
  kLazy,      ///< complete-before-first-reader (the pipelined order)
  kDataflow,  ///< ready-set driven (the task-graph order)
};

/// Maps the public scheduler knob onto its graph schedule.
inline GraphSchedule schedule_for(Scheduler scheduler) {
  switch (scheduler) {
    case Scheduler::kEager:
      return GraphSchedule::kProgram;
    case Scheduler::kPipelined:
      return GraphSchedule::kLazy;
    case Scheduler::kTaskGraph:
      return GraphSchedule::kDataflow;
  }
  return GraphSchedule::kProgram;
}

/// Node execution callbacks. `run_local` and `run_comm` are required; the
/// rest are optional refinements:
///  * run_fused — kProgram only: executes a full consecutive chain of
///    kGemm chunk nodes of one op as a single whole-kernel call (the
///    historical eager charge). Called with the first chunk node and the
///    chain length; the executor then skips the chain.
///  * post_comm/complete_comm — non-blocking split of a comm node (must be
///    provided together). kLazy/kDataflow post up to `window` nodes ahead
///    and complete them in posting order; without these hooks every comm
///    node falls back to blocking run_comm at its completion slot. Posting
///    requires comm nodes without local predecessors (the executor may
///    post before predecessors ran).
struct ExecHooks {
  std::function<void(const TaskNode&)> run_local;
  std::function<void(const TaskNode&)> run_comm;
  std::function<void(const TaskNode&, int)> run_fused;
  std::function<sgmpi::Request(const TaskNode&)> post_comm;
  std::function<void(const TaskNode&, sgmpi::Request&)> complete_comm;
};

/// Executes `graph` for `rank` under `schedule`. `window` bounds the
/// posted-but-uncompleted comm nodes per rank (<= 0 = unbounded; ignored
/// by kProgram, which is fully blocking). Dropped nodes are skipped.
/// Throws std::logic_error on an unexecutable graph (cyclic wait) and
/// propagates whatever the hooks throw (fault injection unwinds through
/// here with requests in flight; sgmpi tolerates that during unwind).
void run_graph(const TaskGraph& graph, int rank, GraphSchedule schedule,
               int window, const ExecHooks& hooks);

}  // namespace summagen::core::taskgraph

#include "src/core/taskgraph/executor.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>
#include <stdexcept>
#include <vector>

namespace summagen::core::taskgraph {
namespace {

bool member(const TaskNode& n, int rank) {
  return std::find(n.owners.begin(), n.owners.end(), rank) != n.owners.end();
}

/// Largest id among a node's live comm predecessors (-1 = none): the
/// completion horizon a kLazy reader waits for.
int max_comm_pred(const std::vector<TaskNode>& nodes, const TaskNode& n) {
  int dep = -1;
  for (int p : n.preds) {
    const TaskNode& pn = nodes[static_cast<std::size_t>(p)];
    if (!pn.dropped && pn.is_comm()) dep = std::max(dep, p);
  }
  return dep;
}

/// Shared post/complete machinery of the kLazy and kDataflow schedules:
/// this rank's comm nodes, posted in ascending id up to `window` ahead and
/// completed in the same order.
class CommPipeline {
 public:
  CommPipeline(const std::vector<TaskNode>& nodes, int rank, int window,
               const ExecHooks& hooks)
      : nodes_(nodes),
        hooks_(hooks),
        depth_(window <= 0 ? std::numeric_limits<std::size_t>::max()
                           : static_cast<std::size_t>(window)) {
    for (const TaskNode& n : nodes) {
      if (!n.dropped && n.is_comm() && member(n, rank)) {
        comms_.push_back(n.id);
      }
    }
  }

  std::size_t size() const { return comms_.size(); }
  bool exhausted() const { return next_complete_ >= comms_.size(); }
  int next_id() const { return comms_[next_complete_]; }

  /// Completes posted comm nodes while the next one's id is <= `dep`,
  /// then tops the posting window back up. Mirrors the historical
  /// pipelined complete_through exactly (posting only ever happens here,
  /// so a schedule that never reads a comm never posts ahead of need).
  void complete_through(int dep) {
    while (next_complete_ < comms_.size() &&
           comms_[next_complete_] <= dep) {
      while (next_post_ <= next_complete_) post_one();
      complete_one();
    }
    top_up();
  }

  /// Completes exactly the next comm node in order (kDataflow's "nothing
  /// computable — block on the pipeline head") and returns its id.
  int complete_next() {
    const int id = comms_[next_complete_];
    while (next_post_ <= next_complete_) post_one();
    complete_one();
    top_up();
    return id;
  }

  void top_up() {
    while (next_post_ < comms_.size() && pending_.size() < depth_) {
      post_one();
    }
  }

 private:
  void post_one() {
    const TaskNode& n =
        nodes_[static_cast<std::size_t>(comms_[next_post_++])];
    pending_.push_back(hooks_.post_comm ? hooks_.post_comm(n)
                                        : sgmpi::Request{});
  }

  void complete_one() {
    const TaskNode& n =
        nodes_[static_cast<std::size_t>(comms_[next_complete_++])];
    sgmpi::Request r = std::move(pending_.front());
    pending_.pop_front();
    if (hooks_.complete_comm) {
      hooks_.complete_comm(n, r);
    } else {
      hooks_.run_comm(n);
    }
  }

  const std::vector<TaskNode>& nodes_;
  const ExecHooks& hooks_;
  const std::size_t depth_;
  std::vector<int> comms_;
  std::deque<sgmpi::Request> pending_;
  std::size_t next_post_ = 0;
  std::size_t next_complete_ = 0;
};

void run_program(const TaskGraph& graph, int rank, const ExecHooks& hooks) {
  const auto& nodes = graph.nodes();
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    const TaskNode& n = nodes[id];
    if (n.dropped) continue;
    if (n.is_comm()) {
      if (member(n, rank)) hooks.run_comm(n);
      continue;
    }
    if (n.owner != rank) continue;
    if (n.kind == NodeKind::kGemm && hooks.run_fused) {
      // Fuse the consecutive chunk chain of this op into one whole-kernel
      // call — the historical eager executor's single charge per DGEMM.
      std::size_t count = 1;
      while (id + count < nodes.size() &&
             nodes[id + count].kind == NodeKind::kGemm &&
             nodes[id + count].payload == n.payload) {
        ++count;
      }
      hooks.run_fused(n, static_cast<int>(count));
      id += count - 1;
      continue;
    }
    hooks.run_local(n);
  }
}

void run_lazy(const TaskGraph& graph, int rank, int window,
              const ExecHooks& hooks) {
  const auto& nodes = graph.nodes();
  CommPipeline pipeline(nodes, rank, window, hooks);
  for (const TaskNode& n : nodes) {
    if (n.dropped || n.is_comm() || n.owner != rank) continue;
    const int dep = max_comm_pred(nodes, n);
    // Every GEMM chunk drives the pipeline (a dependency-free chunk still
    // tops the posting window up, as the historical scheduler did); pure
    // local nodes without comm inputs do not touch it.
    if (n.kind == NodeKind::kGemm || dep >= 0) pipeline.complete_through(dep);
    hooks.run_local(n);
  }
  pipeline.complete_through(std::numeric_limits<int>::max());
}

void run_dataflow(const TaskGraph& graph, int rank, int window,
                  const ExecHooks& hooks) {
  const auto& nodes = graph.nodes();
  CommPipeline pipeline(nodes, rank, window, hooks);

  // Pending-predecessor counts over the nodes this rank can observe:
  // its own local nodes and the comm nodes it participates in.
  std::vector<int> npred(nodes.size(), 0);
  std::vector<char> done(nodes.size(), 0);
  std::set<int> ready;  // my local nodes with all dependencies satisfied
  std::size_t nlocal = 0;
  for (const TaskNode& n : nodes) {
    if (n.dropped || n.is_comm() || n.owner != rank) continue;
    ++nlocal;
    int cnt = 0;
    for (int p : n.preds) {
      const TaskNode& pn = nodes[static_cast<std::size_t>(p)];
      if (pn.dropped) continue;
      if (pn.is_comm() ? member(pn, rank) : pn.owner == rank) ++cnt;
    }
    npred[static_cast<std::size_t>(n.id)] = cnt;
    if (cnt == 0) ready.insert(n.id);
  }

  auto finish = [&](int id) {
    done[static_cast<std::size_t>(id)] = 1;
    for (int s : nodes[static_cast<std::size_t>(id)].succs) {
      const TaskNode& sn = nodes[static_cast<std::size_t>(s)];
      if (sn.dropped || sn.is_comm() || sn.owner != rank) continue;
      if (--npred[static_cast<std::size_t>(s)] == 0) ready.insert(s);
    }
  };

  pipeline.top_up();
  std::size_t executed = 0;
  while (executed < nlocal || !pipeline.exhausted()) {
    if (!ready.empty()) {
      const int id = *ready.begin();
      ready.erase(ready.begin());
      hooks.run_local(nodes[static_cast<std::size_t>(id)]);
      ++executed;
      finish(id);
      continue;
    }
    if (pipeline.exhausted()) {
      throw std::logic_error(
          "taskgraph: deadlock — local nodes blocked with no comm pending");
    }
    // Nothing computable: block on the pipeline head. Guard the graphs
    // whose comm nodes have local predecessors (workspace write-after-read
    // in the step chains): completing such a node early would corrupt the
    // workspace a pending GEMM still reads.
    const TaskNode& head =
        nodes[static_cast<std::size_t>(pipeline.next_id())];
    for (int p : head.preds) {
      const TaskNode& pn = nodes[static_cast<std::size_t>(p)];
      if (!pn.dropped && !pn.is_comm() && pn.owner == rank &&
          !done[static_cast<std::size_t>(p)]) {
        throw std::logic_error(
            "taskgraph: comm node ordered before its local predecessor");
      }
    }
    finish(pipeline.complete_next());
  }
}

}  // namespace

void run_graph(const TaskGraph& graph, int rank, GraphSchedule schedule,
               int window, const ExecHooks& hooks) {
  if (!hooks.run_local || !hooks.run_comm) {
    throw std::logic_error("taskgraph: run_local and run_comm are required");
  }
  if (static_cast<bool>(hooks.post_comm) !=
      static_cast<bool>(hooks.complete_comm)) {
    throw std::logic_error(
        "taskgraph: post_comm and complete_comm must be provided together");
  }
  switch (schedule) {
    case GraphSchedule::kProgram:
      run_program(graph, rank, hooks);
      return;
    case GraphSchedule::kLazy:
      run_lazy(graph, rank, window, hooks);
      return;
    case GraphSchedule::kDataflow:
      run_dataflow(graph, rank, window, hooks);
      return;
  }
}

}  // namespace summagen::core::taskgraph

#include "src/core/taskgraph/taskgraph.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <stdexcept>
#include <string>

namespace summagen::core::taskgraph {

int TaskGraph::add_local(NodeKind kind, int owner, int payload, int aux) {
  TaskNode n;
  n.kind = kind;
  n.id = static_cast<int>(nodes_.size());
  n.owner = owner;
  n.payload = payload;
  n.aux = aux;
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

int TaskGraph::add_comm(NodeKind kind, std::vector<int> owners, int payload,
                        int aux) {
  if (owners.empty()) {
    throw std::logic_error("TaskGraph: comm node without owners");
  }
  TaskNode n;
  n.kind = kind;
  n.id = static_cast<int>(nodes_.size());
  n.owners = std::move(owners);
  n.payload = payload;
  n.aux = aux;
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

void TaskGraph::add_dep(int pred, int succ) {
  if (pred < 0 || succ < 0 || pred >= static_cast<int>(nodes_.size()) ||
      succ >= static_cast<int>(nodes_.size()) || pred == succ) {
    throw std::logic_error("TaskGraph: bad edge " + std::to_string(pred) +
                           " -> " + std::to_string(succ));
  }
  auto& succs = nodes_[static_cast<std::size_t>(pred)].succs;
  if (std::find(succs.begin(), succs.end(), succ) != succs.end()) {
    throw std::logic_error("TaskGraph: duplicate edge " +
                           std::to_string(pred) + " -> " +
                           std::to_string(succ));
  }
  succs.push_back(succ);
  nodes_[static_cast<std::size_t>(succ)].preds.push_back(pred);
}

const TaskNode& TaskGraph::node(int id) const {
  if (id < 0 || id >= static_cast<int>(nodes_.size())) {
    throw std::logic_error("TaskGraph: node id out of range");
  }
  return nodes_[static_cast<std::size_t>(id)];
}

void TaskGraph::validate() const {
  // Edge symmetry: every succ edge has a matching pred edge and vice versa.
  for (const TaskNode& n : nodes_) {
    for (int s : n.succs) {
      const auto& preds = node(s).preds;
      if (std::find(preds.begin(), preds.end(), n.id) == preds.end()) {
        throw std::logic_error("TaskGraph: asymmetric edge " +
                               std::to_string(n.id) + " -> " +
                               std::to_string(s));
      }
    }
    for (int p : n.preds) {
      const auto& succs = node(p).succs;
      if (std::find(succs.begin(), succs.end(), n.id) == succs.end()) {
        throw std::logic_error("TaskGraph: asymmetric edge " +
                               std::to_string(p) + " -> " +
                               std::to_string(n.id));
      }
    }
  }
  // Acyclicity: Kahn's algorithm must consume every node (dropped nodes
  // included — their edges are still present).
  std::vector<int> indeg(nodes_.size(), 0);
  std::deque<int> queue;
  for (const TaskNode& n : nodes_) {
    indeg[static_cast<std::size_t>(n.id)] = static_cast<int>(n.preds.size());
    if (n.preds.empty()) queue.push_back(n.id);
  }
  std::size_t seen = 0;
  while (!queue.empty()) {
    const int id = queue.front();
    queue.pop_front();
    ++seen;
    for (int s : node(id).succs) {
      if (--indeg[static_cast<std::size_t>(s)] == 0) queue.push_back(s);
    }
  }
  if (seen != nodes_.size()) {
    throw std::logic_error("TaskGraph: cycle detected (" +
                           std::to_string(nodes_.size() - seen) +
                           " nodes unreachable)");
  }
}

TaskGraph build_summagen_graph(const partition::PartitionSpec& spec,
                               const ExecutionPlan& plan) {
  TaskGraph g;
  const auto roff = spec.row_offsets();
  const auto coff = spec.col_offsets();

  // Copy nodes first (ids 0..|copy_ops|-1, plan order), indexed by cell so
  // chunk nodes can depend on the copies feeding them — the cascade prune
  // needs copy->chunk edges just like comm->chunk edges.
  std::map<std::pair<int, int>, int> a_copy, b_copy;
  for (std::size_t i = 0; i < plan.copy_ops.size(); ++i) {
    const CopyOp& op = plan.copy_ops[i];
    const int id = g.add_local(NodeKind::kCopy, spec.owner(op.bi, op.bj),
                               static_cast<int>(i));
    (op.is_a ? a_copy : b_copy)[{op.bi, op.bj}] = id;
  }

  // Comm nodes next, in plan order: node id = |copy_ops| + plan index, so
  // ascending-id completion preserves the plan's subgroup collective
  // order. A panels indexed by cell (a chunk reads every panel of the
  // cells its k-interval crosses); B panels by column with their k-span.
  std::map<std::pair<int, int>, std::vector<int>> a_comm;
  struct BSpan {
    std::int64_t k0, k1;
    int node;
  };
  std::map<int, std::vector<BSpan>> b_comm;
  for (std::size_t i = 0; i < plan.comm_ops.size(); ++i) {
    const CommOp& op = plan.comm_ops[i];
    const int id =
        g.add_comm(NodeKind::kBcast, op.owners, static_cast<int>(i));
    if (op.is_a) {
      a_comm[{op.bi, op.bj}].push_back(id);
    } else {
      const std::int64_t k0 = roff[static_cast<std::size_t>(op.bi)] + op.p0;
      b_comm[op.bj].push_back({k0, k0 + op.rows, id});
    }
  }

  // Chunk nodes last, grouped per GemmOp in plan order. Each chunk reads
  // the A cells of row bi whose column blocks cross [k0, k1), the B panels
  // of column bj crossing it, and chains on the previous chunk of its op —
  // accumulation into C(bi, bj) must stay in ascending-k order for the
  // bit-identity invariant.
  const int nrow_blk = static_cast<int>(spec.subph.size());
  const int ncol_blk = static_cast<int>(spec.subpw.size());
  for (std::size_t gi = 0; gi < plan.gemm_ops.size(); ++gi) {
    const GemmOp& gop = plan.gemm_ops[gi];
    int prev = -1;
    for (std::size_t ci = 0; ci < gop.chunks.size(); ++ci) {
      const GemmChunk& ch = gop.chunks[ci];
      const int id = g.add_local(NodeKind::kGemm, gop.owner,
                                 static_cast<int>(gi), static_cast<int>(ci));
      if (prev >= 0) g.add_dep(prev, id);
      prev = id;
      for (int cb = 0; cb < ncol_blk; ++cb) {
        if (coff[static_cast<std::size_t>(cb)] >= ch.k1 ||
            coff[static_cast<std::size_t>(cb) + 1] <= ch.k0) {
          continue;
        }
        if (auto it = a_comm.find({gop.bi, cb}); it != a_comm.end()) {
          for (int nid : it->second) g.add_dep(nid, id);
        } else if (auto ic = a_copy.find({gop.bi, cb}); ic != a_copy.end()) {
          g.add_dep(ic->second, id);
        }
      }
      if (auto it = b_comm.find(gop.bj); it != b_comm.end()) {
        for (const BSpan& s : it->second) {
          if (s.k0 < ch.k1 && s.k1 > ch.k0) g.add_dep(s.node, id);
        }
      }
      for (int rb = 0; rb < nrow_blk; ++rb) {
        if (roff[static_cast<std::size_t>(rb)] >= ch.k1 ||
            roff[static_cast<std::size_t>(rb) + 1] <= ch.k0) {
          continue;
        }
        if (auto ib = b_copy.find({rb, gop.bj}); ib != b_copy.end()) {
          g.add_dep(ib->second, id);
        }
      }
    }
  }
  g.validate();
  return g;
}

void prune_completed(TaskGraph& graph, const ExecutionPlan& plan,
                     const std::set<std::pair<int, int>>& done) {
  auto& nodes = graph.nodes();
  for (TaskNode& n : nodes) {
    if (n.kind != NodeKind::kGemm) continue;
    const GemmOp& gop = plan.gemm_ops[static_cast<std::size_t>(n.payload)];
    if (done.count({gop.bi, gop.bj}) != 0) n.dropped = true;
  }
  // A broadcast/copy survives iff some remaining DGEMM still reads it.
  // Every panel of row bi feeds a chunk of every DGEMM in row bi (a DGEMM
  // reads its whole row line), so this is exactly the historical rule
  // "keep an A op iff its row has a surviving DGEMM" (B: column).
  for (TaskNode& n : nodes) {
    if (n.kind != NodeKind::kBcast && n.kind != NodeKind::kCopy) continue;
    bool live_succ = false;
    for (int s : n.succs) {
      live_succ =
          live_succ || !nodes[static_cast<std::size_t>(s)].dropped;
    }
    n.dropped = !live_succ;
  }
}

namespace {

/// Shared step-chain builder: SUMMA is the stack-less special case of the
/// 2.5D graph.
TaskGraph build_step_chain(int steps, int rank,
                           const std::vector<int>& row_members,
                           const std::vector<int>& col_members,
                           const std::vector<int>& stack_members) {
  TaskGraph g;
  int rep_a = -1, rep_b = -1;
  if (stack_members.size() > 1) {
    rep_a = g.add_comm(NodeKind::kBcast, stack_members, /*payload=*/-1,
                       /*aux=*/0);
    rep_b = g.add_comm(NodeKind::kBcast, stack_members, /*payload=*/-1,
                       /*aux=*/1);
    g.add_dep(rep_a, rep_b);  // depth-communicator collective order
  }
  int prev_gemm = -1;
  for (int s = 0; s < steps; ++s) {
    const int a = row_members.size() > 1
                      ? g.add_comm(NodeKind::kBcast, row_members, s, 0)
                      : g.add_local(NodeKind::kPack, rank, s, 0);
    const int b = col_members.size() > 1
                      ? g.add_comm(NodeKind::kBcast, col_members, s, 1)
                      : g.add_local(NodeKind::kPack, rank, s, 1);
    const int gm = g.add_local(NodeKind::kGemm, rank, s, 2);
    g.add_dep(a, gm);
    g.add_dep(b, gm);
    if (prev_gemm >= 0) {
      // Ascending-k accumulation chain, plus write-after-read: step s
      // overwrites the shared WA/WB panel workspaces step s-1's GEMM read.
      g.add_dep(prev_gemm, gm);
      g.add_dep(prev_gemm, a);
      g.add_dep(prev_gemm, b);
    } else {
      if (rep_a >= 0) g.add_dep(rep_a, a);
      if (rep_b >= 0) g.add_dep(rep_b, b);
    }
    prev_gemm = gm;
  }
  if (stack_members.size() > 1) {
    const int red = g.add_comm(NodeKind::kReduce, stack_members,
                               /*payload=*/-2, /*aux=*/0);
    if (prev_gemm >= 0) {
      g.add_dep(prev_gemm, red);
    } else if (rep_b >= 0) {
      g.add_dep(rep_b, red);
    }
  }
  g.validate();
  return g;
}

}  // namespace

TaskGraph build_summa_graph(int steps, int rank,
                            const std::vector<int>& row_members,
                            const std::vector<int>& col_members) {
  return build_step_chain(steps, rank, row_members, col_members, {});
}

TaskGraph build_summa25d_graph(int steps, int rank,
                               const std::vector<int>& row_members,
                               const std::vector<int>& col_members,
                               const std::vector<int>& stack_members) {
  return build_step_chain(steps, rank, row_members, col_members,
                          stack_members);
}

}  // namespace summagen::core::taskgraph

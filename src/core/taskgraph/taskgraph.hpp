// Data-dependency task graph for the SUMMA-family executions.
//
// Every algorithm in core/ used to hard-code exactly one op ordering: the
// SummaGen ExecutionPlan was replayed front-to-back (eager) or with a
// deferred-completion window (pipelined), and SUMMA/2.5D ran a fixed step
// loop. The task graph splits *what must happen before what* from *when it
// happens*: nodes are panel broadcasts, local copies, B/A-panel packs,
// k-chunked GEMM accumulations, and 2.5D reductions; edges are read/write
// dependencies. Schedulers (src/core/taskgraph/executor.hpp) then execute
// any legal topological order — the eager and pipelined schedules are two
// constrained orders of the same graph, and the dataflow scheduler runs
// whatever is ready.
//
// Determinism contract: every rank builds the graph from the same
// deterministic inputs (the per-rank identical ExecutionPlan, or the
// rank's own grid coordinates), so node ids agree wherever they must: the
// sub-sequence of comm nodes on any one subgroup communicator is identical
// across its members in ascending-id order — the MPI collective-ordering
// rule, inherited from the plan's eager global order.
//
// Recovery contract: shrink-and-repartition recovery prunes the graph
// (prune_completed) instead of rewriting op lists. Node ids are stable
// under pruning — dropped nodes stay in place and every executor skips
// them — so chunk->broadcast dependencies survive filtering and all three
// schedulers remain legal on the un-run subgraph.
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "src/core/plan.hpp"
#include "src/partition/spec.hpp"

namespace summagen::core::taskgraph {

/// What a node does when executed. Comm kinds (kBcast, kReduce) carry the
/// participating ranks in `owners`; local kinds carry the executing rank
/// in `owner`.
enum class NodeKind {
  kBcast,   ///< panel/block broadcast over a subgroup communicator
  kCopy,    ///< single-owner local copy into WA/WB (zero virtual cost)
  kPack,    ///< local panel pack (a degenerate one-rank broadcast axis)
  kGemm,    ///< one k-chunk of a local DGEMM accumulation
  kReduce,  ///< 2.5D partial-C sum-reduction over the depth communicator
};

/// One node of the graph. `payload`/`aux` are algorithm-defined cookies
/// (SummaGen: plan op index + chunk index; SUMMA/2.5D: step index + axis).
struct TaskNode {
  NodeKind kind = NodeKind::kCopy;
  int id = -1;
  int owner = -1;           ///< executing world rank (local nodes; -1 for comm)
  std::vector<int> owners;  ///< participating world ranks (comm nodes only)
  int payload = -1;
  int aux = 0;
  bool dropped = false;     ///< pruned by recovery; executors skip it
  std::vector<int> preds;
  std::vector<int> succs;

  bool is_comm() const { return !owners.empty(); }
};

/// A DAG of TaskNodes. Ids are dense and assigned in construction order;
/// construction order therefore IS the program (eager) order.
class TaskGraph {
 public:
  /// Adds a local node executed by world rank `owner`.
  int add_local(NodeKind kind, int owner, int payload, int aux = 0);
  /// Adds a collective node over `owners` (ascending world ranks).
  int add_comm(NodeKind kind, std::vector<int> owners, int payload,
               int aux = 0);
  /// Adds the edge pred -> succ. Both must already exist; duplicates and
  /// self-edges throw (they would corrupt the executors' pred counts).
  void add_dep(int pred, int succ);

  const std::vector<TaskNode>& nodes() const { return nodes_; }
  std::vector<TaskNode>& nodes() { return nodes_; }
  const TaskNode& node(int id) const;
  std::size_t size() const { return nodes_.size(); }

  /// Structural invariants: edge symmetry, id sanity, acyclicity (Kahn
  /// topological sort must consume every node). Throws std::logic_error.
  void validate() const;

 private:
  std::vector<TaskNode> nodes_;
};

/// Builds the SummaGen graph from the per-rank identical plan: one kCopy
/// node per CopyOp, one kBcast node per CommOp (in plan order, preserving
/// the subgroup collective order), and one kGemm node per GemmChunk.
/// Chunk nodes depend on every panel/copy covering their k-interval and on
/// the previous chunk of the same GemmOp (the ascending-k accumulation
/// chain that keeps every schedule bit-identical).
TaskGraph build_summagen_graph(const partition::PartitionSpec& spec,
                               const ExecutionPlan& plan);

/// Recovery pruning: drops every kGemm node whose C cell is in `done`,
/// then every kBcast/kCopy node left without a live successor (its row or
/// column has no unfinished DGEMM). Node ids are untouched, so the
/// remaining dependencies — including the comm completion order — stay
/// valid for all schedulers. Every rank prunes the identical graph with
/// the identical `done` set, keeping collectives matched.
void prune_completed(TaskGraph& graph, const ExecutionPlan& plan,
                     const std::set<std::pair<int, int>>& done);

/// Builds one rank's SUMMA step chain: per step an A panel node (kBcast
/// over `row_members`, or kPack when the row is trivial), a B panel node
/// over `col_members`, and a kGemm node reading both. The GEMM of step s
/// also writes-after-reads the shared panel workspaces, so it precedes the
/// panel nodes of step s+1. payload = step index; aux: 0 = A, 1 = B.
TaskGraph build_summa_graph(int steps, int rank,
                            const std::vector<int>& row_members,
                            const std::vector<int>& col_members);

/// The SUMMA chain plus 2.5D replication and reduction over
/// `stack_members` (when > 1 deep): repA -> repB precede step 0's panels
/// (payload -1, aux 0/1), and a kReduce node (payload -2) follows the last
/// GEMM.
TaskGraph build_summa25d_graph(int steps, int rank,
                               const std::vector<int>& row_members,
                               const std::vector<int>& col_members,
                               const std::vector<int>& stack_members);

}  // namespace summagen::core::taskgraph

#include "src/core/summa.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace summagen::core {
namespace {

// Balanced 1D split: part sizes of `extent` over `parts`, first
// `extent % parts` parts get one extra element.
std::int64_t part_offset(std::int64_t extent, int parts, int index) {
  const std::int64_t base = extent / parts;
  const std::int64_t extra = extent % parts;
  return base * index + std::min<std::int64_t>(index, extra);
}

std::int64_t part_size(std::int64_t extent, int parts, int index) {
  return part_offset(extent, parts, index + 1) -
         part_offset(extent, parts, index);
}

void validate_config(std::int64_t n, const SummaConfig& config) {
  if (n <= 0) throw std::invalid_argument("summa: n <= 0");
  if (config.pr < 1 || config.pc < 1) {
    throw std::invalid_argument("summa: grid extents must be >= 1");
  }
  if (config.panel < 1) {
    throw std::invalid_argument("summa: panel width must be >= 1");
  }
  if (config.pr > n || config.pc > n) {
    throw std::invalid_argument("summa: grid larger than the matrix");
  }
}

}  // namespace

SummaBlock summa_block(std::int64_t n, const SummaConfig& config, int rank) {
  validate_config(n, config);
  if (rank < 0 || rank >= config.pr * config.pc) {
    throw std::invalid_argument("summa: rank outside grid");
  }
  const int gi = rank / config.pc;
  const int gj = rank % config.pc;
  SummaBlock b;
  b.row0 = part_offset(n, config.pr, gi);
  b.rows = part_size(n, config.pr, gi);
  b.col0 = part_offset(n, config.pc, gj);
  b.cols = part_size(n, config.pc, gj);
  return b;
}

SummaLocalData::SummaLocalData(std::int64_t n, const SummaConfig& config,
                               int rank, const util::Matrix& a,
                               const util::Matrix& b) {
  if (a.rows() != n || a.cols() != n || b.rows() != n || b.cols() != n) {
    throw std::invalid_argument("SummaLocalData: globals must be n x n");
  }
  extent_ = summa_block(n, config, rank);
  a_ = util::extract_block(a, extent_.row0, extent_.col0, extent_.rows,
                           extent_.cols);
  b_ = util::extract_block(b, extent_.row0, extent_.col0, extent_.rows,
                           extent_.cols);
  c_ = util::Matrix(extent_.rows, extent_.cols);
}

void SummaLocalData::gather_c(util::Matrix& c_global) const {
  util::place_block(c_global, c_, extent_.row0, extent_.col0);
}

SummaReport summa_rank(sgmpi::Comm& world, std::int64_t n,
                       const SummaConfig& config,
                       const device::AbstractProcessor& ap,
                       SummaLocalData* data, bool contended) {
  validate_config(n, config);
  if (world.size() != config.pr * config.pc) {
    throw std::invalid_argument("summa: world size != pr * pc");
  }
  const int rank = world.rank();
  const int gi = rank / config.pc;
  const int gj = rank % config.pc;
  const std::int64_t my_rows = part_size(n, config.pr, gi);
  const std::int64_t my_cols = part_size(n, config.pc, gj);

  // Row and column communicators of the 2D grid.
  std::vector<int> row_members, col_members;
  for (int j = 0; j < config.pc; ++j) row_members.push_back(gi * config.pc + j);
  for (int i = 0; i < config.pr; ++i) col_members.push_back(i * config.pc + gj);
  sgmpi::Comm row = config.pc > 1 ? world.subgroup(row_members) : world;
  sgmpi::Comm col = config.pr > 1 ? world.subgroup(col_members) : world;

  // Panel buffers (numeric plane only): WA is my_rows x b, WB is b x my_cols.
  std::vector<double> wa, wb;
  if (data != nullptr) {
    wa.resize(static_cast<std::size_t>(my_rows * config.panel));
    wb.resize(static_cast<std::size_t>(my_cols * config.panel));
  }

  SummaReport report;
  for (std::int64_t k0 = 0; k0 < n; k0 += config.panel) {
    const std::int64_t bcur = std::min(config.panel, n - k0);
    ++report.steps;

    // Which grid column owns A's panel columns [k0, k0+bcur), and which
    // grid row owns B's panel rows. A panel may straddle two owner blocks
    // when block extents are uneven; split at owner boundaries.
    std::int64_t k = k0;
    while (k < k0 + bcur) {
      // --- A panel segment along my processor row ---
      int owner_col = 0;
      while (part_offset(n, config.pc, owner_col + 1) <= k) ++owner_col;
      const std::int64_t seg_end = std::min<std::int64_t>(
          k0 + bcur, part_offset(n, config.pc, owner_col + 1));
      const std::int64_t seg = seg_end - k;

      if (config.pc > 1) {
        const std::int64_t bytes =
            my_rows * seg * static_cast<std::int64_t>(sizeof(double));
        if (data != nullptr && gj == owner_col) {
          // Pack my A columns [k, seg_end) into the panel buffer.
          const std::int64_t local_col =
              k - part_offset(n, config.pc, owner_col);
          util::copy_matrix(wa.data() + (k - k0), bcur,
                            data->a_block().data() + local_col,
                            data->a_block().cols(), my_rows, seg);
        }
        // Broadcast the segment across the row (root = owner column).
        if (data != nullptr) {
          // Use a compact scratch so ranks receive contiguous data.
          std::vector<double> seg_buf(
              static_cast<std::size_t>(my_rows * seg));
          if (gj == owner_col) {
            util::copy_matrix(seg_buf.data(), seg, wa.data() + (k - k0),
                              bcur, my_rows, seg);
          }
          report.mpi_time_s +=
              row.bcast(seg_buf.data(), my_rows * seg, owner_col);
          util::copy_matrix(wa.data() + (k - k0), bcur, seg_buf.data(), seg,
                            my_rows, seg);
        } else {
          report.mpi_time_s += row.bcast_bytes(nullptr, bytes, owner_col);
        }
        ++report.bcasts;
        report.bcast_bytes += bytes;
      } else if (data != nullptr) {
        const std::int64_t local_col = k;
        util::copy_matrix(wa.data() + (k - k0), bcur,
                          data->a_block().data() + local_col,
                          data->a_block().cols(), my_rows, seg);
      }
      k = seg_end;
    }

    k = k0;
    while (k < k0 + bcur) {
      // --- B panel segment down my processor column ---
      int owner_row = 0;
      while (part_offset(n, config.pr, owner_row + 1) <= k) ++owner_row;
      const std::int64_t seg_end = std::min<std::int64_t>(
          k0 + bcur, part_offset(n, config.pr, owner_row + 1));
      const std::int64_t seg = seg_end - k;

      if (config.pr > 1) {
        const std::int64_t bytes =
            seg * my_cols * static_cast<std::int64_t>(sizeof(double));
        if (data != nullptr) {
          std::vector<double> seg_buf(
              static_cast<std::size_t>(seg * my_cols));
          if (gi == owner_row) {
            const std::int64_t local_row =
                k - part_offset(n, config.pr, owner_row);
            util::copy_matrix(seg_buf.data(), my_cols,
                              data->b_block().data() +
                                  local_row * data->b_block().cols(),
                              data->b_block().cols(), seg, my_cols);
          }
          report.mpi_time_s +=
              col.bcast(seg_buf.data(), seg * my_cols, owner_row);
          util::copy_matrix(wb.data() + (k - k0) * my_cols, my_cols,
                            seg_buf.data(), my_cols, seg, my_cols);
        } else {
          report.mpi_time_s += col.bcast_bytes(nullptr, bytes, owner_row);
        }
        ++report.bcasts;
        report.bcast_bytes += bytes;
      } else if (data != nullptr) {
        util::copy_matrix(wb.data() + (k - k0) * my_cols, my_cols,
                          data->b_block().data() + k * data->b_block().cols(),
                          data->b_block().cols(), seg, my_cols);
      }
      k = seg_end;
    }

    // --- rank-b update of my C block ---
    device::KernelCost cost;
    if (data == nullptr) {
      cost = ap.kernel_cost(my_rows, my_cols, bcur, contended);
    } else {
      cost = ap.run_gemm(my_rows, my_cols, bcur, wa.data(), bcur, wb.data(),
                         my_cols, data->c_block().data(), my_cols, contended);
    }
    auto& clk = world.clock();
    const double t0 = clk.now();
    clk.advance_compute(cost.compute_s);
    if (world.events().enabled()) {
      world.events().record({world.world_rank(), trace::EventKind::kCompute,
                             t0, clk.now(), 0,
                             blas::gemm_flops(my_rows, my_cols, bcur),
                             "summa k0=" + std::to_string(k0)});
    }
    if (cost.transfer_s > 0.0) {
      clk.advance_compute(cost.transfer_s);
    }
    report.flops += blas::gemm_flops(my_rows, my_cols, bcur);
  }
  return report;
}

}  // namespace summagen::core

#include "src/core/summa.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/blas/pack_cache.hpp"
#include "src/core/panel_bcast.hpp"
#include "src/core/taskgraph/executor.hpp"
#include "src/core/taskgraph/taskgraph.hpp"
#include "src/util/buffer_pool.hpp"
#include "src/util/matrix_view.hpp"

namespace summagen::core {
namespace {

/// Scheduler constant folded into pack tags so different schedulers never
/// collide on a key even for identical geometry.
constexpr std::uint64_t kSummaPackTag = 0x53554d4d41ull;  // "SUMMA"

void validate_config(std::int64_t n, const SummaConfig& config) {
  if (n <= 0) throw std::invalid_argument("summa: n <= 0");
  if (config.pr < 1 || config.pc < 1) {
    throw std::invalid_argument("summa: grid extents must be >= 1");
  }
  if (config.panel < 1) {
    throw std::invalid_argument("summa: panel width must be >= 1");
  }
  if (config.pr > n || config.pc > n) {
    throw std::invalid_argument("summa: grid larger than the matrix");
  }
}

}  // namespace

SummaBlock summa_block(std::int64_t n, const SummaConfig& config, int rank) {
  validate_config(n, config);
  if (rank < 0 || rank >= config.pr * config.pc) {
    throw std::invalid_argument("summa: rank outside grid");
  }
  const int gi = rank / config.pc;
  const int gj = rank % config.pc;
  SummaBlock b;
  b.row0 = balanced_part_offset(n, config.pr, gi);
  b.rows = balanced_part_size(n, config.pr, gi);
  b.col0 = balanced_part_offset(n, config.pc, gj);
  b.cols = balanced_part_size(n, config.pc, gj);
  return b;
}

SummaLocalData::SummaLocalData(std::int64_t n, const SummaConfig& config,
                               int rank, const util::Matrix& a,
                               const util::Matrix& b) {
  if (a.rows() != n || a.cols() != n || b.rows() != n || b.cols() != n) {
    throw std::invalid_argument("SummaLocalData: globals must be n x n");
  }
  extent_ = summa_block(n, config, rank);
  a_ = util::extract_block(a, extent_.row0, extent_.col0, extent_.rows,
                           extent_.cols);
  b_ = util::extract_block(b, extent_.row0, extent_.col0, extent_.rows,
                           extent_.cols);
  c_ = util::Matrix(extent_.rows, extent_.cols);
}

void SummaLocalData::gather_c(util::Matrix& c_global) const {
  util::place_block(c_global, c_, extent_.row0, extent_.col0);
}

SummaReport summa_rank(sgmpi::Comm& world, std::int64_t n,
                       const SummaConfig& config,
                       const device::AbstractProcessor& ap,
                       SummaLocalData* data, bool contended) {
  validate_config(n, config);
  if (world.size() != config.pr * config.pc) {
    throw std::invalid_argument("summa: world size != pr * pc");
  }
  const int rank = world.rank();
  const int gi = rank / config.pc;
  const int gj = rank % config.pc;
  const std::int64_t my_rows = balanced_part_size(n, config.pr, gi);
  const std::int64_t my_cols = balanced_part_size(n, config.pc, gj);

  // Row and column communicators of the 2D grid.
  std::vector<int> row_members, col_members;
  for (int j = 0; j < config.pc; ++j) row_members.push_back(gi * config.pc + j);
  for (int i = 0; i < config.pr; ++i) col_members.push_back(i * config.pc + gj);
  sgmpi::Comm row = config.pc > 1 ? world.subgroup(row_members) : world;
  sgmpi::Comm col = config.pr > 1 ? world.subgroup(col_members) : world;

  // Panel workspaces (numeric plane only), leased from the shared pool:
  // WA is my_rows x b, WB is b x my_cols. Not zeroed — every panel step
  // fully overwrites the columns/rows the GEMM below reads.
  util::PooledBuffer wa_store, wb_store;
  if (data != nullptr) {
    wa_store = util::BufferPool::instance().acquire(my_rows * config.panel);
    wb_store = util::BufferPool::instance().acquire(my_cols * config.panel);
  }

  SummaReport report;

  // The step chain as a task graph: per step an A panel node, a B panel
  // node, and the GEMM reading both, with write-after-read edges back to
  // the shared WA/WB workspaces. Every rank builds its own (deterministic)
  // graph, so the comm nodes on the row/column communicators appear in the
  // same order on all members.
  const int nsteps = static_cast<int>((n + config.panel - 1) / config.panel);
  const taskgraph::TaskGraph graph = taskgraph::build_summa_graph(
      nsteps, rank, row_members, col_members);

  // A panel (aux 0) or B panel (aux 1) of step `payload` — a kBcast node
  // on a non-trivial axis, a kPack (pure local landing) when the axis has
  // one rank. bcast_k_panel handles both: parts == 1 degenerates to the
  // local copy with no broadcasts counted.
  auto exec_panel = [&](const taskgraph::TaskNode& node) {
    const std::int64_t k0 = node.payload * config.panel;
    const std::int64_t bcur = std::min(config.panel, n - k0);
    PanelBcastStats stats;
    if (node.aux == 0) {
      util::MatrixView wa;
      util::ConstMatrixView a_block;
      if (data != nullptr) {
        wa = util::MatrixView(wa_store.data(), my_rows, bcur, bcur);
        a_block = data->a_block();
      }
      stats = bcast_k_panel(row, PanelAxis::kA, n, config.pc, gj, my_rows,
                            k0, bcur, a_block, wa);
    } else {
      util::MatrixView wb;
      util::ConstMatrixView b_block;
      if (data != nullptr) {
        wb = util::MatrixView(wb_store.data(), bcur, my_cols, my_cols);
        b_block = data->b_block();
      }
      stats = bcast_k_panel(col, PanelAxis::kB, n, config.pr, gi, my_cols,
                            k0, bcur, b_block, wb);
    }
    report.mpi_time_s += stats.mpi_time_s;
    report.bcasts += stats.bcasts;
    report.bcast_bytes += stats.bytes;
  };

  // Rank-b update of my C block (step `payload`).
  auto exec_step_gemm = [&](const taskgraph::TaskNode& node) {
    const std::int64_t k0 = node.payload * config.panel;
    const std::int64_t bcur = std::min(config.panel, n - k0);
    ++report.steps;
    device::KernelCost cost;
    if (data == nullptr) {
      cost = ap.kernel_cost(my_rows, my_cols, bcur, contended);
    } else {
      const util::MatrixView wa(wa_store.data(), my_rows, bcur, bcur);
      const util::MatrixView wb(wb_store.data(), bcur, my_cols, my_cols);
      // WB holds B[k0:k0+bcur, col0:col0+my_cols] — identical on every
      // rank of my processor column, so tag it for the blas pack cache
      // (coordinates + runtime uid fully determine the content).
      const std::int64_t col0 = balanced_part_offset(n, config.pc, gj);
      const std::uint64_t wb_key = blas::pack_tag(
          {world.context_uid(), kSummaPackTag, static_cast<std::uint64_t>(n),
           static_cast<std::uint64_t>(k0), static_cast<std::uint64_t>(bcur),
           static_cast<std::uint64_t>(col0),
           static_cast<std::uint64_t>(my_cols)});
      cost = ap.run_gemm(my_rows, my_cols, bcur, wa.data(), bcur, wb.data(),
                         my_cols, data->c_block().data(), my_cols, contended,
                         wb_key);
    }
    auto& clk = world.clock();
    const double t0 = clk.now();
    clk.advance_compute(cost.compute_s);
    if (world.events().enabled()) {
      world.events().record({world.world_rank(), trace::EventKind::kCompute,
                             t0, clk.now(), 0,
                             blas::gemm_flops(my_rows, my_cols, bcur),
                             "summa k0=" + std::to_string(k0)});
    }
    if (cost.transfer_s > 0.0) {
      clk.advance_compute(cost.transfer_s);
    }
    report.flops += blas::gemm_flops(my_rows, my_cols, bcur);
  };

  taskgraph::ExecHooks hooks;
  hooks.run_comm = exec_panel;
  hooks.run_local = [&](const taskgraph::TaskNode& node) {
    if (node.kind == taskgraph::NodeKind::kPack) {
      exec_panel(node);
    } else {
      exec_step_gemm(node);
    }
  };
  taskgraph::run_graph(graph, rank, taskgraph::schedule_for(config.scheduler),
                       /*window=*/0, hooks);
  return report;
}

}  // namespace summagen::core

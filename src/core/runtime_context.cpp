#include "src/core/runtime_context.hpp"

#include <atomic>
#include <stdexcept>
#include <utility>

#include "src/pool/pool.hpp"

namespace summagen::core {
namespace {

std::atomic<RuntimeContext*> g_current{nullptr};

}  // namespace

RuntimeContext::RuntimeContext() : RuntimeContext(Options()) {}

RuntimeContext::RuntimeContext(const Options& options)
    : capacity_(options.plan_cache_capacity) {
  RuntimeContext* expected = nullptr;
  if (!g_current.compare_exchange_strong(expected, this,
                                         std::memory_order_acq_rel)) {
    throw std::logic_error(
        "RuntimeContext: another context is already active");
  }
  // Size the pool once for the context's lifetime. Both calls are quiescent
  // points (nothing of this context is in flight yet); their hooks trim the
  // PackCache / schedule cache left over from earlier standalone runs, after
  // which the caches accumulate across jobs until the context is destroyed
  // or invalidated.
  if (options.reserved_threads >= 0) {
    sgpool::Pool::set_reserved_threads(options.reserved_threads);
  }
  const int workers =
      options.pool_threads > 0
          ? options.pool_threads
          : sgpool::Pool::recommended_size(sgpool::Pool::reserved_threads());
  sgpool::Pool::configure(workers);
}

RuntimeContext::~RuntimeContext() {
  g_current.store(nullptr, std::memory_order_release);
}

RuntimeContext* RuntimeContext::current() {
  return g_current.load(std::memory_order_acquire);
}

std::uint64_t RuntimeContext::epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return epoch_;
}

void RuntimeContext::invalidate() {
  std::lock_guard<std::mutex> lk(mu_);
  ++epoch_;
  lru_.clear();
  index_.clear();
}

std::shared_ptr<const JobPlan> RuntimeContext::plan_for(
    std::uint64_t key, const std::function<JobPlan()>& build, bool* hit) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++lookups_;
    auto it = index_.find(key);
    if (it != index_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);
      if (hit != nullptr) *hit = true;
      return it->second->plan;
    }
  }
  // Build outside the lock: plans are deterministic functions of the key's
  // asserted configuration, so a concurrent same-key builder produces an
  // identical plan and either copy may win the cache slot.
  auto plan = std::make_shared<const JobPlan>(build());
  if (hit != nullptr) *hit = false;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second->plan;  // raced: reuse the winner
  lru_.push_front(Entry{key, plan});
  index_[key] = lru_.begin();
  if (capacity_ > 0 && lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return plan;
}

RuntimeContext::PlanCacheStats RuntimeContext::plan_cache_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  PlanCacheStats s;
  s.lookups = lookups_;
  s.hits = hits_;
  s.entries = static_cast<std::int64_t>(lru_.size());
  return s;
}

}  // namespace summagen::core
